package policy

import (
	"math"
	"testing"

	"repro/internal/game"
	"repro/internal/lattice"
	"repro/internal/optimize"
)

func TestClampStep(t *testing.T) {
	tests := []struct {
		step, lambda, want float64
	}{
		{0.05, 0.1, 0.05},
		{0.5, 0.1, 0.1},
		{-0.5, 0.1, -0.1},
		{-0.05, 0.1, -0.05},
		{0, 0.1, 0},
	}
	for _, tt := range tests {
		if got := clampStep(tt.step, tt.lambda); got != tt.want {
			t.Errorf("clampStep(%f, %f) = %f, want %f", tt.step, tt.lambda, got, tt.want)
		}
	}
}

func TestClamp01(t *testing.T) {
	if clamp01(-0.5) != 0 || clamp01(1.5) != 1 || clamp01(0.3) != 0.3 {
		t.Error("clamp01 wrong")
	}
}

// TestGrowthExtremeSet: the fallback points at the ratio extreme that
// extremizes alpha1*p + alpha2.
func TestGrowthExtremeSet(t *testing.T) {
	tests := []struct {
		name   string
		coeffs game.LinearCoeffs
		p      float64
		up     bool
		want   float64
	}{
		{
			name:   "rising share, positive slope -> x=1",
			coeffs: game.LinearCoeffs{Alpha1: game.Affine{B: 0}, Alpha2: game.Affine{B: 1}},
			p:      0.1, up: true, want: 1,
		},
		{
			name:   "rising share, negative slope -> x=0",
			coeffs: game.LinearCoeffs{Alpha1: game.Affine{B: -2}, Alpha2: game.Affine{B: 0.1}},
			p:      0.5, up: true, want: 0,
		},
		{
			name:   "falling share, positive slope -> x=0",
			coeffs: game.LinearCoeffs{Alpha1: game.Affine{B: 0}, Alpha2: game.Affine{B: 1}},
			p:      0.9, up: false, want: 0,
		},
		{
			name:   "falling share, negative slope -> x=1",
			coeffs: game.LinearCoeffs{Alpha1: game.Affine{B: -2}, Alpha2: game.Affine{B: 0.1}},
			p:      0.5, up: false, want: 1,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			set := growthExtremeSet(tt.coeffs, tt.p, tt.up)
			got, ok := set.Nearest(0.5)
			if !ok || got != tt.want {
				t.Errorf("growthExtremeSet -> %v, want point {%f}", set, tt.want)
			}
		})
	}
}

// graph1 is a single-region test graph.
type graph1 struct{}

func (graph1) M() int                 { return 1 }
func (graph1) Gamma(i, j int) float64 { return 1 }
func (graph1) Neighbors(i int) []int  { return nil }

func singleModel(t *testing.T, beta float64) *game.Model {
	t.Helper()
	m, err := game.NewModel(lattice.PaperPayoffs(), graph1{}, []float64{beta})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestStallDetection: after StallPatience rounds without improvement the
// controller's stalled() fires once and resets.
func TestStallDetection(t *testing.T) {
	m := singleModel(t, 3)
	f, err := NewFDS(m, NewFreeField(1, 8), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	f.StallPatience = 3
	// No improvement at 0.2 for three rounds -> stall fires on the third.
	if f.stalled(0, 0.2) {
		t.Error("first round cannot stall")
	}
	if f.stalled(0, 0.2) {
		t.Error("second round should not stall yet")
	}
	if !f.stalled(0, 0.2) {
		t.Error("third unimproved round must stall")
	}
	// Counter reset after firing.
	if f.stalled(0, 0.2) {
		t.Error("counter must reset after firing")
	}
	// Improvement resets the counter.
	f.stalled(0, 0.2)
	if f.stalled(0, 0.1) {
		t.Error("improving round must not stall")
	}
	// Zero shortfall clears everything.
	if f.stalled(0, 0) {
		t.Error("in-band region never stalls")
	}
	// Disabled patience.
	f.StallPatience = 0
	for i := 0; i < 10; i++ {
		if f.stalled(0, 0.5) {
			t.Fatal("disabled stall detection must never fire")
		}
	}
	f.ResetStallState()
	if f.stallRounds[0] != 0 || f.lastShortfall[0] != 0 {
		t.Error("ResetStallState did not clear")
	}
}

func TestRevisionLowerBoundValidation(t *testing.T) {
	m := singleModel(t, 3)
	field := NewFreeField(1, 8)
	s := game.NewUniformState(1, 8, 0.5)
	if _, _, err := RevisionLowerBound(m, field, s, 0, 0.15, 0.1, 10); err == nil {
		t.Error("zero mu must error")
	}
	if _, _, err := RevisionLowerBound(m, field, s, 0.5, 0, 0.1, 10); err == nil {
		t.Error("zero tau must error")
	}
	if _, _, err := RevisionLowerBound(m, field, s, 0.5, 0.15, 0, 10); err == nil {
		t.Error("zero lambda must error")
	}
	if _, _, err := RevisionLowerBound(m, field, s, 0.5, 0.15, 0.1, 0); err == nil {
		t.Error("zero budget must error")
	}
	if _, _, err := RevisionLowerBound(m, NewFreeField(2, 8), s, 0.5, 0.15, 0.1, 10); err == nil {
		t.Error("mismatched field must error")
	}
	// Converged field -> bound 0.
	lb, capped, err := RevisionLowerBound(m, field, s, 0.5, 0.15, 0.1, 10)
	if err != nil || capped || lb != 0 {
		t.Errorf("free field bound = %d/%v/%v, want 0", lb, capped, err)
	}
}

// TestRevisionLowerBoundSigmaCeiling: a rising target that the softmax
// ceiling can never reach is reported as capped.
func TestRevisionLowerBoundSigmaCeiling(t *testing.T) {
	// Tiny beta: even at x=1 the best fitness of P1 is far below zero, so
	// its softmax share against the always-zero empty decision stays small.
	m := singleModel(t, 0.01)
	field := NewFreeField(1, 8)
	field.P[0][0].Lo = 0.9 // P1 >= 90%: unreachable under the ceiling
	s := game.NewUniformState(1, 8, 0.1)
	_, capped, err := RevisionLowerBound(m, field, s, 0.5, 0.05, 0.1, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !capped {
		t.Error("unreachable target should cap the bound search")
	}
}

// TestRevisionLowerBoundMonotoneInMu: a slower revision rate cannot yield a
// smaller bound.
func TestRevisionLowerBoundMonotoneInMu(t *testing.T) {
	m := singleModel(t, 4)
	field := NewFreeField(1, 8)
	field.P[0][0].Lo = 0.8
	s := game.NewUniformState(1, 8, 0.5)
	prev := -1
	for _, mu := range []float64{1.0, 0.5, 0.25, 0.1} {
		lb, capped, err := RevisionLowerBound(m, field, s, mu, 0.15, 0.1, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if capped {
			t.Fatalf("mu=%f capped", mu)
		}
		if prev >= 0 && lb < prev {
			t.Errorf("mu=%f bound %d below faster-revision bound %d", mu, lb, prev)
		}
		prev = lb
	}
}

// TestAnalyticLowerBoundFallingShare exercises the downward envelope.
func TestAnalyticLowerBoundFallingShare(t *testing.T) {
	m := singleModel(t, 0.5) // weak utility: slow decay envelope
	field := NewFreeField(1, 8)
	field.P[0][0].Hi = 0.05 // P1 must fall to 5%
	s := game.NewUniformState(1, 8, 0.5)
	s.P[0] = []float64{0.9, 0, 0, 0, 0, 0, 0, 0.1}
	lb, capped, err := AnalyticLowerBound(m, field, s, 0.1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if capped {
		t.Fatal("bound capped unexpectedly")
	}
	if lb < 1 {
		t.Errorf("falling from 0.9 to 0.05 needs at least one round, got %d", lb)
	}
}

// TestConditionSetCoversClassifiedCase: for random affine coefficients, any
// x the condition set admits for a "contains 1" target must classify the
// linearized system into a case converging to 1 (and symmetrically for 0).
func TestConditionSetCoversClassifiedCase(t *testing.T) {
	coeffsList := []game.LinearCoeffs{
		{Alpha1: game.Affine{A: 0.5, B: -1}, Alpha2: game.Affine{A: -0.3, B: 0.8}},
		{Alpha1: game.Affine{A: -0.2, B: 0.4}, Alpha2: game.Affine{A: 0.1, B: -0.5}},
		{Alpha1: game.Affine{A: 1, B: -2}, Alpha2: game.Affine{A: -1, B: 2}},
	}
	for ci, c := range coeffsList {
		for _, p := range []float64{0.1, 0.5, 0.9} {
			// Skip degenerate ratios where alpha1 = alpha2 = 0: the
			// linearized dynamics are frozen there and the case boundary
			// conditions all tie, so membership is ambiguous by design.
			degenerate := func(x float64) bool {
				return math.Abs(c.Alpha1.At(x)) < 1e-9 && math.Abs(c.Alpha2.At(x)) < 1e-9
			}
			up := conditionSet(c, p, optimize.Interval{Lo: 0.8, Hi: 1})
			for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
				if !up.Contains(x) || degenerate(x) {
					continue
				}
				cl := game.Classify(c.Alpha1.At(x), c.Alpha2.At(x), p)
				if cl.Limit != 1 {
					t.Errorf("coeffs %d p=%.1f: x=%.2f in up-set but classifies %v (limit %f)",
						ci, p, x, cl.Case, cl.Limit)
				}
			}
			down := conditionSet(c, p, optimize.Interval{Lo: 0, Hi: 0.2})
			for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
				if !down.Contains(x) || degenerate(x) {
					continue
				}
				cl := game.Classify(c.Alpha1.At(x), c.Alpha2.At(x), p)
				if cl.Limit != 0 {
					t.Errorf("coeffs %d p=%.1f: x=%.2f in down-set but classifies %v (limit %f)",
						ci, p, x, cl.Case, cl.Limit)
				}
			}
		}
	}
}

// TestConditionSetESSTarget: Case-4 sets admit only ratios whose stable
// rest point lies inside the desired interval.
func TestConditionSetESSTarget(t *testing.T) {
	c := game.LinearCoeffs{
		Alpha1: game.Affine{A: -2, B: 0},  // alpha1 = -2 (stable)
		Alpha2: game.Affine{A: 0.2, B: 1}, // alpha2 = 0.2 + x
	}
	want := optimize.Interval{Lo: 0.4, Hi: 0.6}
	set := conditionSet(c, 0.5, want)
	if set.Empty() {
		t.Fatal("expected non-empty Case-4 set")
	}
	for _, x := range []float64{0, 0.2, 0.5, 0.8, 1} {
		rest := -(c.Alpha2.At(x)) / (c.Alpha1.At(x))
		// Skip rest points within float noise of the band edges: interval
		// membership there is decided by rounding, not semantics.
		if math.Abs(rest-want.Lo) < 1e-9 || math.Abs(rest-want.Hi) < 1e-9 {
			continue
		}
		inSet := set.Contains(x)
		inBand := rest >= want.Lo && rest <= want.Hi
		if inSet != inBand {
			t.Errorf("x=%.2f: set membership %v but rest point %.3f in-band %v", x, inSet, rest, inBand)
		}
	}
}
