package policy

import (
	"fmt"
	"sort"

	"repro/internal/game"
	"repro/internal/obs"
	"repro/internal/optimize"
)

// FDS is the Fast Decision Shaping algorithm (Algorithm 2). Each round it
// re-linearizes the replicator dynamics of every region, solves — in closed
// form, since alpha1 and alpha2 are affine in the region's own sharing
// ratio — for the set X_i of ratios that put each tracked decision share in
// a convergence case flowing toward its desired field, intersects those sets
// over the decisions, and moves x_i toward the feasible set by at most
// Lambda per round (Eq. 13).
//
// Deviations from the pseudo-code, both documented in DESIGN.md §3: we use
// the corrected Case-3a/3b orientation, and when x_i must move we step
// toward the *nearest* point of X_i rather than min{X_i} (identical when
// X_i is a single interval, weakly faster otherwise).
type FDS struct {
	model *game.Model
	field *Field
	// Lambda is the maximum per-round change of each sharing ratio.
	Lambda float64
	// BestEffort controls what happens when the per-decision condition sets
	// have an empty intersection (possible, since one scalar ratio steers K
	// coupled shares): when true (the default for Shape), decisions are
	// dropped greedily from the intersection, farthest-from-target last, so
	// the ratio still makes progress on the shares that matter most.
	BestEffort bool
	// StallPatience is the number of consecutive rounds a region may sit
	// out of band without improving while its linearized conditions claim
	// the current ratio is fine, before the controller nudges the ratio in
	// the direction that helps the worst share. The replicator-based
	// linearization can declare satisfaction at a ratio whose true
	// (smoothed) fixed point is slightly outside the band; the nudge
	// escapes that plateau. Zero disables stall detection (pure
	// Algorithm 2).
	StallPatience int

	// Controller state for stall detection, reset by ResetStallState.
	lastShortfall []float64
	stallRounds   []int

	// Instruments; nil (no-op) until Instrument is called.
	obsv    *obs.Observer
	updates *obs.Counter // fds_updates_total
	nudges  *obs.Counter // fds_stall_nudges_total
}

// NewFDS validates inputs and builds the controller.
func NewFDS(m *game.Model, f *Field, lambda float64) (*FDS, error) {
	if m == nil {
		return nil, fmt.Errorf("policy: model must be non-nil")
	}
	if lambda <= 0 || lambda > 1 {
		return nil, fmt.Errorf("policy: lambda %f outside (0,1]", lambda)
	}
	if err := f.Validate(m); err != nil {
		return nil, err
	}
	return &FDS{
		model:         m,
		field:         f,
		Lambda:        lambda,
		BestEffort:    true,
		StallPatience: 8,
		lastShortfall: make([]float64, m.M()),
		stallRounds:   make([]int, m.M()),
	}, nil
}

// ResetStallState clears the stall-detection memory (call when reusing one
// controller across independent runs).
func (f *FDS) ResetStallState() {
	for i := range f.stallRounds {
		f.stallRounds[i] = 0
		f.lastShortfall[i] = 0
	}
}

// FDSMemory is the controller's cross-round mutable state (the stall
// detector's per-region shortfall and counters), exposed so a coordinator
// checkpoint can restore the controller exactly where it left off.
type FDSMemory struct {
	LastShortfall []float64 `json:"last_shortfall"`
	StallRounds   []int     `json:"stall_rounds"`
}

// Memory snapshots the controller's cross-round state.
func (f *FDS) Memory() FDSMemory {
	return FDSMemory{
		LastShortfall: append([]float64(nil), f.lastShortfall...),
		StallRounds:   append([]int(nil), f.stallRounds...),
	}
}

// SetMemory restores cross-round state captured by Memory on a controller
// with the same region count.
func (f *FDS) SetMemory(mem FDSMemory) error {
	if len(mem.LastShortfall) != len(f.lastShortfall) || len(mem.StallRounds) != len(f.stallRounds) {
		return fmt.Errorf("policy: FDS memory for %d/%d regions, controller has %d",
			len(mem.LastShortfall), len(mem.StallRounds), len(f.lastShortfall))
	}
	copy(f.lastShortfall, mem.LastShortfall)
	copy(f.stallRounds, mem.StallRounds)
	return nil
}

// Field returns the controller's desired field.
func (f *FDS) Field() *Field { return f.field }

// Instrument makes the controller report per-iteration counters
// (fds_updates_total, fds_stall_nudges_total) and Shape spans through the
// given observer. Uninstrumented controllers pay only nil-checks.
func (f *FDS) Instrument(o *obs.Observer) {
	f.obsv = o
	f.updates = o.Counter("fds_updates_total", "FDS ratio-update rounds executed")
	f.nudges = o.Counter("fds_stall_nudges_total", "stall-escape ratio nudges applied")
}

// conditionSet returns the set of x values that place decision k of region
// i (current share p, linearized coefficients c) in a case flowing to its
// desired interval.
func conditionSet(c game.LinearCoeffs, p float64, want optimize.Interval) optimize.Set {
	a1, a2 := c.Alpha1, c.Alpha2
	sum := a1.Add(a2)

	sumGE := optimize.SolveAffineGE(sum.A, sum.B)
	sumLE := optimize.SolveAffineLE(sum.A, sum.B)
	a2GE := optimize.SolveAffineGE(a2.A, a2.B)
	a2LE := optimize.SolveAffineLE(a2.A, a2.B)

	switch {
	case want.Contains(1):
		// Case 1 or Case 3a: growth positive at the current share.
		x1 := sumGE.Intersect(a2GE)
		// Case 3a: unstable rest point below p, i.e. alpha1*p + alpha2 >= 0.
		atP := optimize.SolveAffineGE(a1.A*p+a2.A, a1.B*p+a2.B)
		x3a := sumGE.Intersect(a2LE).Intersect(atP)
		return optimize.NewSet(x1, x3a)
	case want.Contains(0):
		// Case 2 or Case 3b.
		x2 := sumLE.Intersect(a2LE)
		atP := optimize.SolveAffineLE(a1.A*p+a2.A, a1.B*p+a2.B)
		x3b := sumGE.Intersect(a2LE).Intersect(atP)
		return optimize.NewSet(x2, x3b)
	default:
		// Case 4: stable interior rest point inside the desired interval.
		// With alpha1 < 0, p* >= lo <=> alpha1*lo + alpha2 >= 0 and
		// p* <= hi <=> alpha1*hi + alpha2 <= 0.
		lo := optimize.SolveAffineGE(a1.A*want.Lo+a2.A, a1.B*want.Lo+a2.B)
		hi := optimize.SolveAffineLE(a1.A*want.Hi+a2.A, a1.B*want.Hi+a2.B)
		x4 := sumLE.Intersect(a2GE).Intersect(lo).Intersect(hi)
		return optimize.NewSet(x4)
	}
}

// UpdateRatios performs one FDS round: it recomputes X_i for every region
// from the current state and moves each x_i toward it by at most Lambda,
// writing the new ratios into s.X. It returns, per region, whether the
// current ratio already satisfied its condition set.
func (f *FDS) UpdateRatios(s *game.State) ([]bool, error) {
	m := f.model
	f.updates.Inc()
	satisfied := make([]bool, m.M())
	for i := 0; i < m.M(); i++ {
		coeffs, err := m.Linearize(s, i)
		if err != nil {
			return nil, err
		}

		type cond struct {
			set  optimize.Set
			dist float64 // how far the share is from its target interval
		}
		conds := make([]cond, 0, m.K())
		for k := 0; k < m.K(); k++ {
			want := f.field.P[i][k]
			if want.Lo <= 0 && want.Hi >= 1 {
				continue // unconstrained share
			}
			p := s.P[i][k]
			d := 0.0
			switch {
			case p < want.Lo:
				d = want.Lo - p
			case p > want.Hi:
				d = p - want.Hi
			}
			set := conditionSet(coeffs[k], p, want)
			if set.Empty() && d > 0 {
				// No ratio places this share in a case flowing to its
				// target under the frozen linearization — typical when the
				// share is near-extinct and its growth rate is negative for
				// every x. Fall back to the ratio extreme that maximizes
				// (if the share must rise) or minimizes (if it must fall)
				// the linearized growth rate alpha1*p + alpha2, so the
				// system is at least steered toward eventual satisfiability.
				set = growthExtremeSet(coeffs[k], p, p < want.Lo)
			}
			conds = append(conds, cond{set: set, dist: d})
		}

		xSet := optimize.FullSet()
		if len(conds) > 0 {
			// Intersect most-urgent first so best-effort dropping removes
			// the least-urgent conditions.
			sort.SliceStable(conds, func(a, b int) bool { return conds[a].dist > conds[b].dist })
			for _, c := range conds {
				next := xSet.Intersect(c.set)
				if next.Empty() {
					if !f.BestEffort {
						xSet = next
						break
					}
					continue // drop this condition
				}
				xSet = next
			}
		}

		// Region shortfall for stall detection.
		worstDist, worstK := 0.0, -1
		for k := 0; k < m.K(); k++ {
			want := f.field.P[i][k]
			p := s.P[i][k]
			d := 0.0
			switch {
			case p < want.Lo:
				d = want.Lo - p
			case p > want.Hi:
				d = p - want.Hi
			}
			if d > worstDist {
				worstDist, worstK = d, k
			}
		}

		x := s.X[i]
		if xSet.Empty() {
			// No ratio helps under the frozen linearization; hold position.
			satisfied[i] = false
			f.noteProgress(i, worstDist)
			continue
		}
		if xSet.Contains(x) {
			satisfied[i] = true
			if f.stalled(i, worstDist) && worstK >= 0 {
				// The linearization says the ratio is fine, but the region
				// has sat out of band without improving: nudge the ratio
				// toward the extreme that raises (or lowers) the worst
				// share's growth rate.
				up := s.P[i][worstK] < f.field.P[i][worstK].Lo
				nudge := growthExtremeSet(coeffs[worstK], s.P[i][worstK], up)
				if target, ok := nudge.Nearest(x); ok {
					step := clampStep(target-x, f.Lambda)
					s.X[i] = clamp01(x + step)
					f.nudges.Inc()
				}
			}
			continue
		}
		f.noteProgress(i, worstDist)
		target, _ := xSet.Nearest(x)
		s.X[i] = clamp01(x + clampStep(target-x, f.Lambda))
	}
	return satisfied, nil
}

// noteProgress records the region's shortfall and resets its stall counter
// when the shortfall improved.
func (f *FDS) noteProgress(i int, worstDist float64) {
	if worstDist < f.lastShortfall[i]-1e-9 || worstDist == 0 {
		f.stallRounds[i] = 0
	}
	f.lastShortfall[i] = worstDist
}

// stalled updates the stall counter and reports whether the region has been
// stuck for StallPatience rounds.
func (f *FDS) stalled(i int, worstDist float64) bool {
	if f.StallPatience <= 0 || worstDist == 0 {
		f.stallRounds[i] = 0
		f.lastShortfall[i] = worstDist
		return false
	}
	if worstDist < f.lastShortfall[i]-1e-9 {
		f.stallRounds[i] = 0
	} else {
		f.stallRounds[i]++
	}
	f.lastShortfall[i] = worstDist
	if f.stallRounds[i] >= f.StallPatience {
		f.stallRounds[i] = 0
		return true
	}
	return false
}

func clampStep(step, lambda float64) float64 {
	if step > lambda {
		return lambda
	}
	if step < -lambda {
		return -lambda
	}
	return step
}

// growthExtremeSet returns the single ratio (as a point set) that extremizes
// the linearized growth rate (alpha1*p + alpha2)(x), which is affine in x
// with slope b1*p + b2: the maximizing endpoint when up is true, the
// minimizing one otherwise.
func growthExtremeSet(c game.LinearCoeffs, p float64, up bool) optimize.Set {
	slope := c.Alpha1.B*p + c.Alpha2.B
	hi := slope > 0
	if !up {
		hi = !hi
	}
	if hi {
		return optimize.NewSet(optimize.Interval{Lo: 1, Hi: 1})
	}
	return optimize.NewSet(optimize.Interval{Lo: 0, Hi: 0})
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// ShapeResult reports a full FDS run.
type ShapeResult struct {
	// Converged reports whether every share reached its desired interval
	// within the round budget.
	Converged bool
	// Rounds is the number of rounds until convergence (or the budget).
	Rounds int
	// RatioTrace[t][i] is x_i at round t.
	RatioTrace [][]float64
	// Trajectory[t][i][k] is p_{i,k} at round t (including round 0).
	Trajectory [][][]float64
	// Shortfall is the final worst distance from a share to its interval.
	Shortfall float64
}

// Shape runs the closed loop: each round FDS adjusts the sharing ratios,
// then the replicator dynamics advance one round. It stops as soon as every
// share is inside its desired field or after maxRounds.
func (f *FDS) Shape(d game.Stepper, s *game.State, maxRounds int) (*ShapeResult, error) {
	if maxRounds <= 0 {
		return nil, fmt.Errorf("policy: maxRounds must be positive, got %d", maxRounds)
	}
	if d.Model() != f.model {
		return nil, fmt.Errorf("policy: dynamics and FDS use different models")
	}
	span := f.obsv.Span("fds_shape", obs.A("max_rounds", maxRounds))
	res := &ShapeResult{}
	snapshot := func() {
		res.RatioTrace = append(res.RatioTrace, append([]float64(nil), s.X...))
		pt := make([][]float64, len(s.P))
		for i := range s.P {
			pt[i] = append([]float64(nil), s.P[i]...)
		}
		res.Trajectory = append(res.Trajectory, pt)
	}
	snapshot()
	for t := 0; t < maxRounds; t++ {
		if ok, short := f.field.Converged(s); ok {
			res.Converged = true
			res.Rounds = t
			res.Shortfall = short
			span.End(obs.A("converged", true), obs.A("rounds", t))
			return res, nil
		}
		if _, err := f.UpdateRatios(s); err != nil {
			span.End(obs.A("error", err.Error()))
			return nil, err
		}
		if err := d.Step(s); err != nil {
			span.End(obs.A("error", err.Error()))
			return nil, err
		}
		snapshot()
	}
	ok, short := f.field.Converged(s)
	res.Converged = ok
	res.Rounds = maxRounds
	res.Shortfall = short
	span.End(obs.A("converged", ok), obs.A("rounds", maxRounds), obs.A("shortfall", short))
	return res, nil
}
