package policy

import (
	"bytes"
	"strings"
	"testing"
)

func f64(v float64) *float64 { return &v }

func TestFieldSpecBuild(t *testing.T) {
	spec := FieldSpec{
		Regions:   3,
		Decisions: 8,
		Defaults: []FieldBound{
			{Decision: 1, Min: f64(0.2)},
			{Decision: 5, Max: f64(0.1)},
		},
		Overrides: []FieldBound{
			{Region: 1, Decision: 1, Min: f64(0.5), Max: f64(0.9)},
		},
	}
	field, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if field.M() != 3 || field.K() != 8 {
		t.Fatalf("field shape %dx%d", field.M(), field.K())
	}
	// Defaults everywhere.
	if field.P[0][0].Lo != 0.2 || field.P[2][0].Lo != 0.2 {
		t.Errorf("default min not applied: %v / %v", field.P[0][0], field.P[2][0])
	}
	if field.P[0][4].Hi != 0.1 {
		t.Errorf("default max not applied: %v", field.P[0][4])
	}
	// Override intersects with the default.
	if field.P[1][0].Lo != 0.5 || field.P[1][0].Hi != 0.9 {
		t.Errorf("override not applied: %v", field.P[1][0])
	}
	// Untouched shares stay free.
	if field.P[0][3].Lo != 0 || field.P[0][3].Hi != 1 {
		t.Errorf("free share modified: %v", field.P[0][3])
	}
}

func TestFieldSpecValidation(t *testing.T) {
	tests := []struct {
		name string
		spec FieldSpec
	}{
		{"no regions", FieldSpec{Regions: 0, Decisions: 8}},
		{"no decisions", FieldSpec{Regions: 1, Decisions: 0}},
		{"decision too large", FieldSpec{Regions: 1, Decisions: 8,
			Defaults: []FieldBound{{Decision: 9, Min: f64(0.1)}}}},
		{"decision zero", FieldSpec{Regions: 1, Decisions: 8,
			Defaults: []FieldBound{{Decision: 0}}}},
		{"override region out of range", FieldSpec{Regions: 2, Decisions: 8,
			Overrides: []FieldBound{{Region: 5, Decision: 1, Min: f64(0.1)}}}},
		{"inverted interval", FieldSpec{Regions: 1, Decisions: 8,
			Defaults: []FieldBound{{Decision: 1, Min: f64(0.8), Max: f64(0.2)}}}},
		{"min above one", FieldSpec{Regions: 1, Decisions: 8,
			Defaults: []FieldBound{{Decision: 1, Min: f64(1.2)}}}},
		{"contradictory combination", FieldSpec{Regions: 1, Decisions: 8,
			Defaults:  []FieldBound{{Decision: 1, Min: f64(0.8)}},
			Overrides: []FieldBound{{Region: 0, Decision: 1, Max: f64(0.2)}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.spec.Build(); err == nil {
				t.Error("want validation error")
			}
		})
	}
}

func TestFieldSpecJSONRoundTrip(t *testing.T) {
	input := `{
	  "regions": 2,
	  "decisions": 8,
	  "defaults": [{"decision": 1, "min": 0.3}],
	  "overrides": [{"region": 1, "decision": 7, "max": 0.05}]
	}`
	field, err := ReadFieldSpec(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if field.P[0][0].Lo != 0.3 || field.P[1][6].Hi != 0.05 {
		t.Fatalf("parsed field wrong: %v / %v", field.P[0][0], field.P[1][6])
	}

	var buf bytes.Buffer
	if err := WriteFieldSpec(&buf, field); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFieldSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range field.P {
		for k := range field.P[i] {
			if field.P[i][k] != back.P[i][k] {
				t.Fatalf("round trip changed region %d decision %d: %v vs %v",
					i, k+1, field.P[i][k], back.P[i][k])
			}
		}
	}
}

func TestReadFieldSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ReadFieldSpec(strings.NewReader(`{"regions":1,"decisions":8,"bogus":true}`)); err == nil {
		t.Error("unknown fields must be rejected")
	}
	if _, err := ReadFieldSpec(strings.NewReader(`not json`)); err == nil {
		t.Error("malformed JSON must be rejected")
	}
}
