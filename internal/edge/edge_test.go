package edge

import (
	"errors"
	"io"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/lattice"
	"repro/internal/sensor"
	"repro/internal/transport"
)

func upload(v, round, decision int, modalities ...sensor.Type) transport.Upload {
	items := make([]transport.Item, 0, len(modalities))
	for i, m := range modalities {
		items = append(items, transport.Item{Owner: v, Modality: m, Seq: i + 1})
	}
	return transport.Upload{Vehicle: v, Round: round, Decision: decision, Items: items}
}

func TestDistributorRoundLifecycle(t *testing.T) {
	d := NewDistributor(lattice.NewPaper(), 1)
	if err := d.BeginRound(1, 0.5); err != nil {
		t.Fatal(err)
	}
	if d.Round() != 1 || d.X() != 0.5 {
		t.Errorf("round/x = %d/%f", d.Round(), d.X())
	}
	if err := d.BeginRound(2, 1.5); err == nil {
		t.Error("invalid ratio must error")
	}
}

func TestAddUploadValidation(t *testing.T) {
	d := NewDistributor(lattice.NewPaper(), 1)
	if err := d.BeginRound(3, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.AddUpload(upload(1, 2, 1, sensor.Camera)); err == nil {
		t.Error("wrong round must be rejected")
	}
	if err := d.AddUpload(upload(1, 3, 99, sensor.Camera)); err == nil {
		t.Error("invalid decision must be rejected")
	}
	// Decision 7 = radar only: smuggling camera must be rejected.
	if err := d.AddUpload(upload(1, 3, 7, sensor.Camera)); err == nil {
		t.Error("modality outside decision must be rejected")
	}
	bad := upload(1, 3, 1, sensor.Camera)
	bad.Items[0].Owner = 2
	if err := d.AddUpload(bad); err == nil {
		t.Error("foreign-owned item must be rejected")
	}
	if err := d.AddUpload(upload(1, 3, 7, sensor.Radar)); err != nil {
		t.Errorf("valid upload rejected: %v", err)
	}
	if d.NumUploads() != 1 {
		t.Errorf("NumUploads = %d", d.NumUploads())
	}
	// Replacement.
	if err := d.AddUpload(upload(1, 3, 8)); err != nil {
		t.Fatal(err)
	}
	if d.NumUploads() != 1 {
		t.Errorf("replacement changed count: %d", d.NumUploads())
	}
}

// TestDistributeLatticePolicy: with x = 1 every accessible item is
// delivered and no inaccessible item leaks.
func TestDistributeLatticePolicy(t *testing.T) {
	d := NewDistributor(lattice.NewPaper(), 1)
	if err := d.BeginRound(1, 1); err != nil {
		t.Fatal(err)
	}
	// Vehicle 1: decision 1 (everything); vehicle 2: decision 7 (radar);
	// vehicle 3: decision 8 (nothing).
	for _, u := range []transport.Upload{
		upload(1, 1, 1, sensor.Camera, sensor.LiDAR, sensor.Radar),
		upload(2, 1, 7, sensor.Radar),
		upload(3, 1, 8),
	} {
		if err := d.AddUpload(u); err != nil {
			t.Fatal(err)
		}
	}
	got := d.Distribute()

	// Vehicle 1 (decision 1) accesses everyone: radar from 2, nothing from 3.
	if len(got[1]) != 1 || got[1][0].Owner != 2 || got[1][0].Modality != sensor.Radar {
		t.Errorf("vehicle 1 delivery = %v", got[1])
	}
	// Vehicle 2 (decision 7) accesses subsets of {radar}: only vehicle 3's
	// empty share. Nothing from vehicle 1 (P1 is a superset).
	if len(got[2]) != 0 {
		t.Errorf("vehicle 2 delivery = %v, want empty", got[2])
	}
	// Vehicle 3 (decision 8) accesses nothing.
	if len(got[3]) != 0 {
		t.Errorf("vehicle 3 delivery = %v, want empty", got[3])
	}
}

// TestDistributeZeroRatio: x = 0 delivers nothing.
func TestDistributeZeroRatio(t *testing.T) {
	d := NewDistributor(lattice.NewPaper(), 1)
	if err := d.BeginRound(1, 0); err != nil {
		t.Fatal(err)
	}
	for _, u := range []transport.Upload{
		upload(1, 1, 1, sensor.Camera, sensor.LiDAR, sensor.Radar),
		upload(2, 1, 1, sensor.Camera, sensor.LiDAR, sensor.Radar),
	} {
		if err := d.AddUpload(u); err != nil {
			t.Fatal(err)
		}
	}
	for v, items := range d.Distribute() {
		if len(items) != 0 {
			t.Errorf("vehicle %d received %d items at x=0", v, len(items))
		}
	}
}

// TestDistributeRatioStatistics: with many pairs, the delivered fraction
// approaches x.
func TestDistributeRatioStatistics(t *testing.T) {
	d := NewDistributor(lattice.NewPaper(), 42)
	x := 0.3
	if err := d.BeginRound(1, x); err != nil {
		t.Fatal(err)
	}
	n := 60
	for v := 1; v <= n; v++ {
		if err := d.AddUpload(upload(v, 1, 1, sensor.Camera, sensor.LiDAR, sensor.Radar)); err != nil {
			t.Fatal(err)
		}
	}
	deliveries := d.Distribute()
	pairs := 0
	delivered := 0
	for _, items := range deliveries {
		// Each delivered sharer contributes 3 items.
		delivered += len(items) / 3
		pairs += n - 1
	}
	frac := float64(delivered) / float64(pairs)
	if math.Abs(frac-x) > 0.05 {
		t.Errorf("delivered fraction %.3f, want ~%.1f", frac, x)
	}
}

func TestCensusAndShares(t *testing.T) {
	d := NewDistributor(lattice.NewPaper(), 1)
	if err := d.BeginRound(1, 1); err != nil {
		t.Fatal(err)
	}
	for _, u := range []transport.Upload{
		upload(1, 1, 1, sensor.Camera, sensor.LiDAR, sensor.Radar),
		upload(2, 1, 7, sensor.Radar),
		upload(3, 1, 7, sensor.Radar),
		upload(4, 1, 8),
	} {
		if err := d.AddUpload(u); err != nil {
			t.Fatal(err)
		}
	}
	census := d.Census()
	if census[0] != 1 || census[6] != 2 || census[7] != 1 {
		t.Errorf("census = %v", census)
	}
	shares := Shares(census)
	if math.Abs(shares[6]-0.5) > 1e-12 {
		t.Errorf("shares = %v", shares)
	}
	uniform := Shares(make([]int, 8))
	for _, v := range uniform {
		if math.Abs(v-0.125) > 1e-12 {
			t.Errorf("empty census shares = %v", uniform)
		}
	}
}

// TestServerRoundOverInproc drives a full round over the in-process
// transport with three scripted vehicle clients.
func TestServerRoundOverInproc(t *testing.T) {
	net := transport.NewInprocNetwork()
	l, err := net.Listen("edge-0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(0, lattice.NewPaper(), 7)
	go srv.Serve(l)
	defer srv.Close()

	type client struct {
		conn     transport.Conn
		decision int
		items    []sensor.Type
	}
	clients := []*client{
		{decision: 1, items: []sensor.Type{sensor.Camera, sensor.LiDAR, sensor.Radar}},
		{decision: 7, items: []sensor.Type{sensor.Radar}},
		{decision: 8},
	}
	for i, c := range clients {
		conn, err := net.Dial("edge-0")
		if err != nil {
			t.Fatal(err)
		}
		c.conn = conn
		hello, err := transport.Encode(transport.KindHello, transport.Hello{Vehicle: i + 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.Send(hello); err != nil {
			t.Fatal(err)
		}
		ack, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		var a transport.Ack
		if err := transport.Decode(ack, transport.KindAck, &a); err != nil || a.Err != "" {
			t.Fatalf("hello ack = %+v, %v", a, err)
		}
	}
	// Wait until registration is visible.
	deadline := time.Now().Add(2 * time.Second)
	for srv.NumVehicles() < len(clients) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.NumVehicles() != len(clients) {
		t.Fatalf("registered %d vehicles", srv.NumVehicles())
	}

	// Each client: receive policy, upload, expect ack + delivery.
	var wg sync.WaitGroup
	results := make([]transport.Delivery, len(clients))
	for i, c := range clients {
		i, c := i, c
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := c.conn.Recv()
			if err != nil {
				t.Errorf("client %d: recv policy: %v", i, err)
				return
			}
			var pol transport.Policy
			if err := transport.Decode(m, transport.KindPolicy, &pol); err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			if pol.X != 1 || pol.Round != 1 {
				t.Errorf("client %d: policy = %+v", i, pol)
			}
			up := upload(i+1, 1, c.decision, c.items...)
			msg, err := transport.Encode(transport.KindUpload, up)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			if err := c.conn.Send(msg); err != nil {
				t.Errorf("client %d: send upload: %v", i, err)
				return
			}
			// Ack then delivery (order: ack is sent by the read loop,
			// delivery by RunRound; both arrive on the same conn).
			for n := 0; n < 2; n++ {
				m, err := c.conn.Recv()
				if err != nil {
					t.Errorf("client %d: recv: %v", i, err)
					return
				}
				switch m.Kind {
				case transport.KindAck:
					var a transport.Ack
					if err := transport.Decode(m, transport.KindAck, &a); err != nil || a.Err != "" {
						t.Errorf("client %d: upload ack %+v %v", i, a, err)
					}
				case transport.KindDelivery:
					if err := transport.Decode(m, transport.KindDelivery, &results[i]); err != nil {
						t.Errorf("client %d: %v", i, err)
					}
				}
			}
		}()
	}

	census, err := srv.RunRound(1, 1.0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if census[0] != 1 || census[6] != 1 || census[7] != 1 {
		t.Errorf("census = %v", census)
	}
	// Vehicle 1 (decision 1, x=1) must receive vehicle 2's radar item.
	if len(results[0].Items) != 1 || results[0].Items[0].Modality != sensor.Radar {
		t.Errorf("vehicle 1 delivery = %+v", results[0])
	}
	for _, c := range clients {
		_ = c.conn.Close()
	}
}

// TestServerRoundTimeout: a round with a missing vehicle still completes
// after the timeout.
func TestServerRoundTimeout(t *testing.T) {
	net := transport.NewInprocNetwork()
	l, err := net.Listen("edge-t")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(0, lattice.NewPaper(), 7)
	go srv.Serve(l)
	defer srv.Close()

	conn, err := net.Dial("edge-t")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello, _ := transport.Encode(transport.KindHello, transport.Hello{Vehicle: 1})
	if err := conn.Send(hello); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err != nil { // ack
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.NumVehicles() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	census, err := srv.RunRound(1, 0.5, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Error("round completed before timeout despite missing upload")
	}
	for _, c := range census {
		if c != 0 {
			t.Errorf("census should be empty, got %v", census)
		}
	}
}

// TestServerDuplicateRegistrationReplacesStale: when a vehicle re-registers
// (e.g. after a reconnect the server has not noticed yet), the new session
// wins — the stale conn is closed and the registry still holds one entry.
func TestServerDuplicateRegistrationReplacesStale(t *testing.T) {
	net := transport.NewInprocNetwork()
	l, err := net.Listen("edge-d")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(0, lattice.NewPaper(), 7)
	go srv.Serve(l)
	defer srv.Close()

	register := func() (transport.Conn, transport.Ack) {
		conn, err := net.Dial("edge-d")
		if err != nil {
			t.Fatal(err)
		}
		hello, _ := transport.Encode(transport.KindHello, transport.Hello{Vehicle: 9})
		if err := conn.Send(hello); err != nil {
			t.Fatal(err)
		}
		m, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		var a transport.Ack
		if err := transport.Decode(m, transport.KindAck, &a); err != nil {
			t.Fatal(err)
		}
		return conn, a
	}
	c1, a1 := register()
	defer c1.Close()
	if a1.Err != "" {
		t.Fatalf("first registration failed: %s", a1.Err)
	}
	c2, a2 := register()
	defer c2.Close()
	if a2.Err != "" {
		t.Errorf("re-registration should replace the stale session, got %q", a2.Err)
	}
	// The stale conn is closed by the server.
	done := make(chan error, 1)
	go func() {
		_, err := c1.Recv()
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, io.EOF) {
			t.Errorf("stale conn Recv = %v, want EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stale conn was not closed")
	}
	if n := srv.NumVehicles(); n != 1 {
		t.Errorf("NumVehicles = %d, want 1", n)
	}
}

// Regression test for a check-then-act race: AddUpload used to validate the
// round under one lock acquisition and insert under another, so a
// BeginRound between the two could land a stale upload in the fresh
// buffer. Hammer uploads against concurrent round flips and assert the
// invariant that the buffer only ever holds uploads for the current round.
func TestAddUploadRoundFlipRace(t *testing.T) {
	d := NewDistributor(lattice.NewPaper(), 1)
	if err := d.BeginRound(0, 1); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			u0 := upload(w, 0, 8)
			u1 := upload(w, 1, 8)
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Both rounds race the flips; exactly one is current at any
				// instant, and stale ones must bounce with ErrStaleUpload.
				for _, u := range []transport.Upload{u0, u1} {
					if err := d.AddUpload(u); err != nil && !errors.Is(err, ErrStaleUpload) {
						t.Errorf("AddUpload: %v", err)
						return
					}
				}
			}
		}(w)
	}

	check := func() {
		d.mu.Lock()
		defer d.mu.Unlock()
		for v, u := range d.uploads {
			if u.Round != d.round {
				t.Fatalf("vehicle %d upload for round %d buffered in round %d", v, u.Round, d.round)
			}
		}
	}
	for i := 0; i < 2000; i++ {
		if err := d.BeginRound(i%2, 1); err != nil {
			t.Fatal(err)
		}
		check()
	}
	close(stop)
	wg.Wait()
	check()
}
