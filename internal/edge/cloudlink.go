package edge

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/session"
)

// CloudLink maintains an edge server's connection to the cloud across link
// failures. Report dials lazily through the Dialer's backoff schedule,
// submits the round's census, and — when the link drops or the reply times
// out — redials and re-submits the census for the same round. The cloud
// answers re-submissions for already-completed rounds immediately with the
// region's current ratio, so a partitioned edge catches up as soon as the
// link heals.
type CloudLink struct {
	// Edge identifies this region to the cloud.
	Edge int
	// Dialer establishes cloud connections with backoff (required).
	Dialer *transport.Dialer
	// ReplyTimeout bounds the wait for the cloud's ratio reply before the
	// link is declared dead and the census re-submitted (0 = wait
	// forever).
	ReplyTimeout time.Duration
	// Attempts is the number of submit attempts per Report (default 3).
	Attempts int
	// Obs, when non-nil, is the observer the link reports through
	// (edge_cloud_redials_total, edge_cloud_reports_total). Set it before
	// the first Report; nil falls back to a private registry so Redials
	// still counts.
	Obs *obs.Observer

	mu      sync.Mutex
	conn    transport.Conn
	dialed  bool
	redials *obs.Counter // edge_cloud_redials_total
	reports *obs.Counter // edge_cloud_reports_total
}

// metricsLocked lazily binds the link's counters to Obs (or a private
// observer). Called with l.mu held.
func (l *CloudLink) metricsLocked() {
	if l.redials != nil {
		return
	}
	o := l.Obs
	if o == nil {
		o = obs.New()
		l.Obs = o
	}
	l.redials = o.Counter("edge_cloud_redials_total", "cloud-link reconnects after the first dial")
	l.reports = o.Counter("edge_cloud_reports_total", "censuses submitted to the cloud (including re-submissions)")
}

// Redials returns how many times the link re-established its connection
// after the first dial. It is a typed view over the obs registry
// (edge_cloud_redials_total).
func (l *CloudLink) Redials() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.metricsLocked()
	return int(l.redials.Value())
}

// Close drops the link's connection, if any.
func (l *CloudLink) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn == nil {
		return nil
	}
	err := l.conn.Close()
	l.conn = nil
	return err
}

// ensureConn returns the live connection, dialing one if needed.
func (l *CloudLink) ensureConn() (transport.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.metricsLocked()
	if l.conn != nil {
		return l.conn, nil
	}
	if l.Dialer == nil {
		return nil, fmt.Errorf("edge %d: cloud link has no dialer", l.Edge)
	}
	conn, err := l.Dialer.DialRetry()
	if err != nil {
		return nil, fmt.Errorf("edge %d: dialing cloud: %w", l.Edge, err)
	}
	if l.dialed {
		l.redials.Inc()
	}
	l.dialed = true
	l.conn = conn
	return conn, nil
}

// dropConn discards conn if it is still the link's current connection.
func (l *CloudLink) dropConn(conn transport.Conn) {
	_ = conn.Close()
	l.mu.Lock()
	if l.conn == conn {
		l.conn = nil
	}
	l.mu.Unlock()
}

// Report submits one round's census and returns the next sharing ratio,
// reconnecting and re-submitting across connection failures.
func (l *CloudLink) Report(round int, counts []int) (float64, error) {
	attempts := l.Attempts
	if attempts <= 0 {
		attempts = 3
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		conn, err := l.ensureConn()
		if err != nil {
			return 0, err // the dialer already retried with backoff
		}
		l.mu.Lock()
		l.reports.Inc()
		l.mu.Unlock()
		x, err := session.ReportCensus(conn, l.Edge, round, counts, l.ReplyTimeout)
		if err == nil {
			return x, nil
		}
		l.dropConn(conn)
		if !transport.IsConnError(err) {
			return 0, fmt.Errorf("edge %d: reporting round %d: %w", l.Edge, round, err)
		}
		lastErr = err
	}
	return 0, fmt.Errorf("edge %d: reporting round %d failed after %d attempts: %w",
		l.Edge, round, attempts, lastErr)
}
