package edge

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/session"
)

// CloudLink maintains an edge server's connection to the cloud across link
// failures. Report dials lazily through the Dialer's backoff schedule,
// submits the round's census, and — when the link drops or the reply times
// out — redials and re-submits the census for the same round. The cloud
// answers re-submissions for already-completed rounds immediately with the
// region's current ratio, so a partitioned edge catches up as soon as the
// link heals.
type CloudLink struct {
	// Edge identifies this region to the cloud.
	Edge int
	// Dialer establishes cloud connections with backoff (required).
	Dialer *transport.Dialer
	// ReplyTimeout bounds the wait for the cloud's ratio reply before the
	// link is declared dead and the census re-submitted (0 = wait
	// forever).
	ReplyTimeout time.Duration
	// Attempts is the number of submit attempts per Report (default 3).
	Attempts int
	// Obs, when non-nil, is the observer the link reports through
	// (edge_cloud_redials_total, edge_cloud_reports_total). Set it before
	// the first Report; nil falls back to a private registry so Redials
	// still counts.
	Obs *obs.Observer
	// OnCorrection, when non-nil, is invoked (outside the link's lock) for
	// each ratio correction the cloud pushes after a fixed-lag rewind, with
	// the cloud's latest completed round and this region's corrected sharing
	// ratio. Corrections are pushed fire-and-forget, so they surface during
	// the next Report exchange; stale or redelivered frames are dropped by
	// the monotonic correction sequence before the callback fires.
	OnCorrection func(round int, x float64)

	mu          sync.Mutex
	conn        transport.Conn
	dialed      bool
	lastSeq     int64        // newest adopted correction sequence
	redials     *obs.Counter // edge_cloud_redials_total
	reports     *obs.Counter // edge_cloud_reports_total
	corrections *obs.Counter // edge_ratio_corrections_total
}

// metricsLocked lazily binds the link's counters to Obs (or a private
// observer). Called with l.mu held.
func (l *CloudLink) metricsLocked() {
	if l.redials != nil {
		return
	}
	o := l.Obs
	if o == nil {
		o = obs.New()
		l.Obs = o
	}
	l.redials = o.Counter("edge_cloud_redials_total", "cloud-link reconnects after the first dial")
	l.reports = o.Counter("edge_cloud_reports_total", "censuses submitted to the cloud (including re-submissions)")
	l.corrections = o.Counter("edge_ratio_corrections_total", "ratio corrections adopted after cloud fixed-lag rewinds")
}

// Redials returns how many times the link re-established its connection
// after the first dial. It is a typed view over the obs registry
// (edge_cloud_redials_total).
func (l *CloudLink) Redials() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.metricsLocked()
	return int(l.redials.Value())
}

// Close drops the link's connection, if any.
func (l *CloudLink) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn == nil {
		return nil
	}
	err := l.conn.Close()
	l.conn = nil
	return err
}

// ensureConn returns the live connection, dialing one if needed.
func (l *CloudLink) ensureConn() (transport.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.metricsLocked()
	if l.conn != nil {
		return l.conn, nil
	}
	if l.Dialer == nil {
		return nil, fmt.Errorf("edge %d: cloud link has no dialer", l.Edge)
	}
	conn, err := l.Dialer.DialRetry()
	if err != nil {
		return nil, fmt.Errorf("edge %d: dialing cloud: %w", l.Edge, err)
	}
	if l.dialed {
		l.redials.Inc()
	}
	l.dialed = true
	l.conn = conn
	return conn, nil
}

// dropConn discards conn if it is still the link's current connection.
func (l *CloudLink) dropConn(conn transport.Conn) {
	_ = conn.Close()
	l.mu.Lock()
	if l.conn == conn {
		l.conn = nil
	}
	l.mu.Unlock()
}

// handleOther absorbs non-reply frames that interleave with a census
// exchange. Ratio corrections are adopted when their sequence advances past
// the newest one seen — redelivered or reordered frames are no-ops — and
// anything else fails the exchange, preserving the strict reply discipline.
func (l *CloudLink) handleOther(m transport.Message) error {
	if m.Kind != transport.KindRatioCorrection {
		return fmt.Errorf("edge %d: unexpected %s frame during census exchange", l.Edge, m.Kind)
	}
	var rc transport.RatioCorrection
	if err := transport.Decode(m, transport.KindRatioCorrection, &rc); err != nil {
		return err
	}
	if rc.Edge != l.Edge {
		return nil // misrouted frame; the ratio belongs to another region
	}
	l.mu.Lock()
	if rc.Seq <= l.lastSeq {
		l.mu.Unlock()
		return nil
	}
	l.lastSeq = rc.Seq
	l.corrections.Inc()
	cb := l.OnCorrection
	l.mu.Unlock()
	if cb != nil {
		cb(rc.Round, rc.X)
	}
	return nil
}

// Report submits one round's census and returns the next sharing ratio,
// reconnecting and re-submitting across connection failures.
func (l *CloudLink) Report(round int, counts []int) (float64, error) {
	attempts := l.Attempts
	if attempts <= 0 {
		attempts = 3
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		conn, err := l.ensureConn()
		if err != nil {
			return 0, err // the dialer already retried with backoff
		}
		l.mu.Lock()
		l.reports.Inc()
		l.mu.Unlock()
		x, err := session.ReportCensusWith(conn, l.Edge, round, counts, l.ReplyTimeout, l.handleOther)
		if err == nil {
			return x, nil
		}
		l.dropConn(conn)
		if !transport.IsConnError(err) {
			return 0, fmt.Errorf("edge %d: reporting round %d: %w", l.Edge, round, err)
		}
		lastErr = err
	}
	return 0, fmt.Errorf("edge %d: reporting round %d failed after %d attempts: %w",
		l.Edge, round, attempts, lastErr)
}
