// Package edge implements the edge-server role of Fig. 1: it registers the
// vehicles of its Voronoi cell, collects their per-round sensor uploads
// (step ④), applies the lattice-based data-sharing policy with the sharing
// ratio x set by the cloud, and distributes the collected data back
// (step ⑤). It also aggregates the cell's decision census for the cloud
// (step ①) and applies ratio updates (step ②).
package edge

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/lattice"
	"repro/internal/sensor"
	"repro/internal/transport"
)

// ErrStaleUpload marks an upload for a round other than the current one —
// the harmless by-product of a delayed policy broadcast or a vehicle
// reconnecting mid-round, not a protocol violation.
var ErrStaleUpload = errors.New("edge: upload for a stale round")

// Distributor is the edge server's policy engine, independent of any
// transport: it accumulates one round's uploads and computes each vehicle's
// delivery under the lattice policy.
type Distributor struct {
	lat *lattice.Lattice
	rng *rand.Rand

	mu      sync.Mutex
	round   int
	x       float64
	uploads map[int]transport.Upload // by vehicle

	// Edge-side perception (see perception.go); zero mask disables it.
	edgeShare    sensor.Mask
	edgeDecision lattice.Decision
	edgeSeq      int
}

// NewDistributor builds a distributor over the decision lattice with the
// given random seed (randomness implements the sharing-ratio coin flips).
func NewDistributor(lat *lattice.Lattice, seed int64) *Distributor {
	return &Distributor{
		lat:     lat,
		rng:     rand.New(rand.NewSource(seed)),
		x:       1,
		uploads: make(map[int]transport.Upload),
	}
}

// BeginRound resets the upload buffer and records the round's sharing
// ratio. It returns an error for an invalid ratio.
func (d *Distributor) BeginRound(round int, x float64) error {
	if x < 0 || x > 1 {
		return fmt.Errorf("edge: sharing ratio %f outside [0,1]", x)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.round = round
	d.x = x
	d.uploads = make(map[int]transport.Upload)
	return nil
}

// Round returns the current round number.
func (d *Distributor) Round() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.round
}

// X returns the current sharing ratio.
func (d *Distributor) X() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.x
}

// AddUpload records a vehicle's upload for the current round. Uploads for
// other rounds are rejected; a vehicle uploading twice replaces its earlier
// upload. The upload's decision must be valid, and every item's share set
// must be consistent with the decision (the edge enforces the policy: a
// vehicle cannot smuggle modalities its decision does not share).
func (d *Distributor) AddUpload(u transport.Upload) error {
	// Policy validation first: it reads only the immutable lattice, so it
	// needs no lock.
	k := lattice.Decision(u.Decision)
	share, err := d.lat.Share(k)
	if err != nil {
		return fmt.Errorf("edge: upload from vehicle %d: %w", u.Vehicle, err)
	}
	for _, item := range u.Items {
		if !share.Has(item.Modality) {
			return fmt.Errorf("edge: vehicle %d shared %v not covered by decision %d (%v)",
				u.Vehicle, item.Modality, u.Decision, share)
		}
		if item.Owner != u.Vehicle {
			return fmt.Errorf("edge: vehicle %d uploaded an item owned by %d", u.Vehicle, item.Owner)
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	// The round check and the insert must share one lock acquisition: with
	// them split, a BeginRound between the two lands a stale upload in the
	// new round's buffer.
	if u.Round != d.round {
		return fmt.Errorf("%w: upload for round %d, current round is %d", ErrStaleUpload, u.Round, d.round)
	}
	d.uploads[u.Vehicle] = u
	return nil
}

// NumUploads returns the number of vehicles that uploaded this round.
func (d *Distributor) NumUploads() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.uploads)
}

// Distribute computes each uploader's delivery: for every other vehicle b
// with decision k_b such that P^{k_b} ⊆ P^{k_a}, vehicle a receives b's
// items with probability x (one coin flip per sharer-receiver pair, so a
// sharer's items are delivered atomically, matching the paper's
// "probability x to access the shared data from b").
func (d *Distributor) Distribute() map[int][]transport.Item {
	d.mu.Lock()
	defer d.mu.Unlock()

	vehicles := make([]int, 0, len(d.uploads))
	for v := range d.uploads {
		vehicles = append(vehicles, v)
	}
	sort.Ints(vehicles) // determinism for a fixed seed

	edgeContribution := d.edgeItems()

	out := make(map[int][]transport.Item, len(vehicles))
	for _, a := range vehicles {
		ua := d.uploads[a]
		var items []transport.Item
		for _, b := range vehicles {
			if a == b {
				continue
			}
			ub := d.uploads[b]
			if !d.lat.CanAccess(lattice.Decision(ua.Decision), lattice.Decision(ub.Decision)) {
				continue
			}
			if d.rng.Float64() >= d.x {
				continue
			}
			items = append(items, ub.Items...)
		}
		// Edge-side perception: delivered under the same lattice rule and
		// sharing ratio, with the edge acting as a virtual sharer.
		if len(edgeContribution) > 0 &&
			d.lat.CanAccess(lattice.Decision(ua.Decision), d.edgeDecision) &&
			d.rng.Float64() < d.x {
			items = append(items, edgeContribution...)
		}
		out[a] = items
	}
	return out
}

// Census returns the decision counts of the current round's uploads
// (Counts[k] = vehicles on decision k+1).
func (d *Distributor) Census() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	counts := make([]int, d.lat.K())
	for _, u := range d.uploads {
		if u.Decision >= 1 && u.Decision <= d.lat.K() {
			counts[u.Decision-1]++
		}
	}
	return counts
}

// Shares converts a census into a decision distribution; a census with no
// vehicles yields a uniform distribution.
func Shares(counts []int) []float64 {
	out := make([]float64, len(counts))
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		for i := range out {
			out[i] = 1 / float64(len(counts))
		}
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}
