package edge

import (
	"sync"
	"testing"
	"time"

	"repro/internal/lattice"
	"repro/internal/sensor"
	"repro/internal/transport"
)

// scriptedVehicle is a minimal test client: it registers, then answers
// every Policy with an Upload, until stopped or disconnected.
type scriptedVehicle struct {
	id       int
	decision int
	conn     transport.Conn
	stop     chan struct{}
	done     sync.WaitGroup
}

func startScriptedVehicle(t *testing.T, net *transport.InprocNetwork, addr string, id, decision int) *scriptedVehicle {
	t.Helper()
	conn, err := net.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	v := &scriptedVehicle{id: id, decision: decision, conn: conn, stop: make(chan struct{})}
	hello, err := transport.Encode(transport.KindHello, transport.Hello{Vehicle: id})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(hello); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err != nil { // registration ack
		t.Fatal(err)
	}
	v.done.Add(1)
	go func() {
		defer v.done.Done()
		for {
			m, err := conn.Recv()
			if err != nil {
				return
			}
			if m.Kind != transport.KindPolicy {
				continue
			}
			var pol transport.Policy
			if err := transport.Decode(m, transport.KindPolicy, &pol); err != nil {
				return
			}
			items := []transport.Item{}
			if v.decision == 7 {
				items = append(items, transport.Item{Owner: v.id, Modality: sensor.Radar, Seq: pol.Round + 1})
			}
			up, err := transport.Encode(transport.KindUpload, transport.Upload{
				Vehicle:  v.id,
				Round:    pol.Round,
				Decision: v.decision,
				Items:    items,
			})
			if err != nil {
				return
			}
			if err := conn.Send(up); err != nil {
				return
			}
		}
	}()
	return v
}

func (v *scriptedVehicle) disconnect() {
	_ = v.conn.Close()
	v.done.Wait()
}

// TestServerSurvivesVehicleDropout: a vehicle disconnecting mid-session is
// dropped from subsequent rounds without blocking them.
func TestServerSurvivesVehicleDropout(t *testing.T) {
	net := transport.NewInprocNetwork()
	l, err := net.Listen("edge-f")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(0, lattice.NewPaper(), 7)
	go srv.Serve(l)
	defer srv.Close()

	v1 := startScriptedVehicle(t, net, "edge-f", 1, 7)
	v2 := startScriptedVehicle(t, net, "edge-f", 2, 8)
	defer v1.disconnect()

	deadline := time.Now().Add(2 * time.Second)
	for srv.NumVehicles() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	census, err := srv.RunRound(0, 1, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if census[6] != 1 || census[7] != 1 {
		t.Fatalf("round 0 census = %v", census)
	}

	// Vehicle 2 drops out.
	v2.disconnect()
	deadline = time.Now().Add(2 * time.Second)
	for srv.NumVehicles() > 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.NumVehicles() != 1 {
		t.Fatalf("dropout not detected: %d vehicles", srv.NumVehicles())
	}

	census, err = srv.RunRound(1, 1, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if census[6] != 1 || census[7] != 0 {
		t.Fatalf("round 1 census after dropout = %v", census)
	}
}

// TestServerLateJoiner: a vehicle connecting between rounds participates
// from the next round on.
func TestServerLateJoiner(t *testing.T) {
	net := transport.NewInprocNetwork()
	l, err := net.Listen("edge-l")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(0, lattice.NewPaper(), 7)
	go srv.Serve(l)
	defer srv.Close()

	v1 := startScriptedVehicle(t, net, "edge-l", 1, 8)
	defer v1.disconnect()
	deadline := time.Now().Add(2 * time.Second)
	for srv.NumVehicles() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	census, err := srv.RunRound(0, 1, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if total(census) != 1 {
		t.Fatalf("round 0 census = %v", census)
	}

	v2 := startScriptedVehicle(t, net, "edge-l", 2, 7)
	defer v2.disconnect()
	deadline = time.Now().Add(2 * time.Second)
	for srv.NumVehicles() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	census, err = srv.RunRound(1, 1, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if total(census) != 2 {
		t.Fatalf("round 1 census = %v", census)
	}
}

func total(xs []int) int {
	n := 0
	for _, v := range xs {
		n += v
	}
	return n
}
