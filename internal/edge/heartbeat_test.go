package edge

import (
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

// leaseServer is a minimal cloud stand-in: it acks every KindLease frame it
// receives and records the renewals. kill closes the listener AND every
// accepted conn — inproc conns outlive their listener, so a plain listener
// close would not simulate the process dying.
type leaseServer struct {
	l        transport.Listener
	mu       sync.Mutex
	conns    []transport.Conn
	renewals []transport.Lease
	wg       sync.WaitGroup
}

func (ls *leaseServer) serve(l transport.Listener) {
	ls.l = l
	ls.wg.Add(1)
	go func() {
		defer ls.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			ls.mu.Lock()
			ls.conns = append(ls.conns, conn)
			ls.mu.Unlock()
			ls.wg.Add(1)
			go func() {
				defer ls.wg.Done()
				defer conn.Close()
				for {
					m, err := conn.Recv()
					if err != nil {
						return
					}
					var lease transport.Lease
					if err := transport.Decode(m, transport.KindLease, &lease); err != nil {
						continue
					}
					ls.mu.Lock()
					ls.renewals = append(ls.renewals, lease)
					ls.mu.Unlock()
					ack, _ := transport.Encode(transport.KindAck, transport.Ack{})
					if err := conn.Send(ack); err != nil {
						return
					}
				}
			}()
		}
	}()
}

func (ls *leaseServer) count() int {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return len(ls.renewals)
}

func (ls *leaseServer) kill() {
	ls.l.Close()
	ls.mu.Lock()
	for _, c := range ls.conns {
		_ = c.Close()
	}
	ls.mu.Unlock()
	ls.wg.Wait()
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// The heartbeat must renew periodically, survive the lease server dying,
// and redial onto its replacement.
func TestHeartbeatRenewsAndRedials(t *testing.T) {
	net := transport.NewInprocNetwork()
	l, err := net.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	srv := &leaseServer{}
	srv.serve(l)

	o := obs.New()
	hb := &Heartbeat{
		Edge: 3,
		Dialer: &transport.Dialer{
			Dial:      func() (transport.Conn, error) { return net.Dial("cloud") },
			BaseDelay: time.Millisecond,
			MaxDelay:  10 * time.Millisecond,
		},
		TTL:      90 * time.Millisecond,
		Interval: 10 * time.Millisecond,
		Obs:      o,
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		hb.Run(stop)
	}()

	waitUntil(t, "initial renewals", func() bool { return srv.count() >= 3 })
	srv.mu.Lock()
	got := srv.renewals[0]
	srv.mu.Unlock()
	if got.Edge != 3 || got.TTLMillis != 90 {
		t.Fatalf("lease frame = %+v, want Edge 3, TTLMillis 90", got)
	}

	// Kill the cloud: the listener goes away and in-flight conns die.
	srv.kill()

	// Restart it under the same name; the heartbeat must redial and resume.
	l2, err := net.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	srv2 := &leaseServer{}
	srv2.serve(l2)
	waitUntil(t, "renewals after restart", func() bool { return srv2.count() >= 2 })

	close(stop)
	<-done
	srv2.kill()

	reg := o.Registry()
	var renewals, redials float64
	for _, p := range reg.Snapshot() {
		switch p.Name {
		case "edge_lease_renewals_total":
			renewals = p.Value
		case "edge_lease_redials_total":
			redials = p.Value
		}
	}
	if renewals < 5 {
		t.Errorf("edge_lease_renewals_total = %v, want >= 5", renewals)
	}
	if redials < 1 {
		t.Errorf("edge_lease_redials_total = %v, want >= 1", redials)
	}
}

// Run must exit promptly when stop closes, even while the cloud is down
// and the heartbeat is inside its dial-retry loop.
func TestHeartbeatStopsWhileCloudDown(t *testing.T) {
	net := transport.NewInprocNetwork()
	hb := &Heartbeat{
		Edge: 0,
		Dialer: &transport.Dialer{
			Dial:        func() (transport.Conn, error) { return net.Dial("nowhere") },
			MaxAttempts: 2,
			BaseDelay:   5 * time.Millisecond,
			MaxDelay:    20 * time.Millisecond,
		},
		TTL: 50 * time.Millisecond,
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		hb.Run(stop)
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("heartbeat did not stop while dialing a dead cloud")
	}
}
