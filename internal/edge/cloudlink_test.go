package edge

import (
	"testing"
	"time"

	"repro/internal/transport"
)

// TestCloudLinkResubmitsAfterDrop: when the cloud connection dies before the
// ratio reply arrives, the link redials and re-submits the same round's
// census, and skips stale replies once reconnected.
func TestCloudLinkResubmitsAfterDrop(t *testing.T) {
	net := transport.NewInprocNetwork()
	l, err := net.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	serverErr := make(chan error, 1)
	go func() {
		serverErr <- func() error {
			// Session 1: swallow the census and drop the link.
			c1, err := l.Accept()
			if err != nil {
				return err
			}
			if _, err := c1.Recv(); err != nil {
				return err
			}
			_ = c1.Close()

			// Session 2: answer the re-submission, preceded by a stale reply
			// the link must skip.
			c2, err := l.Accept()
			if err != nil {
				return err
			}
			defer c2.Close()
			m, err := c2.Recv()
			if err != nil {
				return err
			}
			var census transport.Census
			if err := transport.Decode(m, transport.KindCensus, &census); err != nil {
				return err
			}
			stale, err := transport.Encode(transport.KindRatio, transport.Ratio{Round: census.Round, X: 0.1})
			if err != nil {
				return err
			}
			if err := c2.Send(stale); err != nil {
				return err
			}
			good, err := transport.Encode(transport.KindRatio, transport.Ratio{Round: census.Round + 1, X: 0.75})
			if err != nil {
				return err
			}
			return c2.Send(good)
		}()
	}()

	link := &CloudLink{
		Edge: 0,
		Dialer: &transport.Dialer{
			Dial:  func() (transport.Conn, error) { return net.Dial("cloud") },
			Seed:  1,
			Sleep: func(time.Duration) {},
		},
		ReplyTimeout: 2 * time.Second,
	}
	defer link.Close()

	x, err := link.Report(3, []int{1, 2, 3})
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	if x != 0.75 {
		t.Errorf("ratio = %f, want 0.75 (the non-stale reply)", x)
	}
	if got := link.Redials(); got != 1 {
		t.Errorf("Redials = %d, want 1", got)
	}
	if err := <-serverErr; err != nil {
		t.Fatalf("fake cloud: %v", err)
	}
}

// TestCloudLinkSurfacesProtocolErrors: an error ack from the cloud is a
// protocol failure, not a link failure — no retry, no redial.
func TestCloudLinkSurfacesProtocolErrors(t *testing.T) {
	net := transport.NewInprocNetwork()
	l, err := net.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		if _, err := c.Recv(); err != nil {
			return
		}
		m, err := transport.Encode(transport.KindAck, transport.Ack{Err: "census from unknown edge 9"})
		if err != nil {
			return
		}
		_ = c.Send(m)
	}()

	link := &CloudLink{
		Edge: 9,
		Dialer: &transport.Dialer{
			Dial:  func() (transport.Conn, error) { return net.Dial("cloud") },
			Seed:  1,
			Sleep: func(time.Duration) {},
		},
		ReplyTimeout: 2 * time.Second,
	}
	defer link.Close()
	if _, err := link.Report(0, []int{1}); err == nil {
		t.Fatal("rejected census must surface an error")
	}
	if got := link.Redials(); got != 0 {
		t.Errorf("Redials = %d, want 0 for a protocol error", got)
	}
}

// TestCloudLinkAdoptsRatioCorrections: correction frames pushed by the cloud
// during a census exchange are adopted monotonically — redelivered and
// reordered sequences are dropped — while the exchange still completes.
func TestCloudLinkAdoptsRatioCorrections(t *testing.T) {
	net := transport.NewInprocNetwork()
	l, err := net.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	serverErr := make(chan error, 1)
	go func() {
		serverErr <- func() error {
			c, err := l.Accept()
			if err != nil {
				return err
			}
			defer c.Close()
			m, err := c.Recv()
			if err != nil {
				return err
			}
			var census transport.Census
			if err := transport.Decode(m, transport.KindCensus, &census); err != nil {
				return err
			}
			for _, rc := range []transport.RatioCorrection{
				{Edge: 1, Round: 6, Seq: 4, X: 0.6},  // another region's frame: ignored
				{Edge: 0, Round: 6, Seq: 5, X: 0.61}, // adopted
				{Edge: 0, Round: 6, Seq: 5, X: 0.61}, // redelivered: dropped
				{Edge: 0, Round: 5, Seq: 3, X: 0.40}, // reordered stale seq: dropped
				{Edge: 0, Round: 7, Seq: 8, X: 0.66}, // adopted
			} {
				f, err := transport.Encode(transport.KindRatioCorrection, rc)
				if err != nil {
					return err
				}
				if err := c.Send(f); err != nil {
					return err
				}
			}
			reply, err := transport.Encode(transport.KindRatio, transport.Ratio{Round: census.Round + 1, X: 0.8})
			if err != nil {
				return err
			}
			return c.Send(reply)
		}()
	}()

	type adoption struct {
		round int
		x     float64
	}
	var adopted []adoption
	link := &CloudLink{
		Edge: 0,
		Dialer: &transport.Dialer{
			Dial:  func() (transport.Conn, error) { return net.Dial("cloud") },
			Seed:  1,
			Sleep: func(time.Duration) {},
		},
		ReplyTimeout: 2 * time.Second,
		OnCorrection: func(round int, x float64) {
			adopted = append(adopted, adoption{round, x})
		},
	}
	defer link.Close()

	x, err := link.Report(7, []int{1, 2, 3})
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	if x != 0.8 {
		t.Errorf("ratio = %f, want 0.8", x)
	}
	want := []adoption{{6, 0.61}, {7, 0.66}}
	if len(adopted) != len(want) {
		t.Fatalf("adopted %v, want %v", adopted, want)
	}
	for i, w := range want {
		if adopted[i] != w {
			t.Errorf("adoption %d = %v, want %v", i, adopted[i], w)
		}
	}
	if got := link.Obs.Counter("edge_ratio_corrections_total", "").Value(); got != 2 {
		t.Errorf("edge_ratio_corrections_total = %v, want 2", got)
	}
	if err := <-serverErr; err != nil {
		t.Fatalf("fake cloud: %v", err)
	}
}
