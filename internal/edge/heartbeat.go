package edge

import (
	"errors"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/session"
)

// Heartbeat maintains an edge server's membership lease with the cloud. It
// runs on a dedicated connection — never the census link, whose
// request/reply exchange would race with the lease acks — renewing every
// Interval and redialing whenever the connection drops, so a restarted
// cloud re-admits the edge as soon as it is reachable again. While the
// edge is down (its heartbeat stopped), the cloud evicts it from the round
// barrier quorum after at most TTL.
type Heartbeat struct {
	// Edge identifies this region to the cloud.
	Edge int
	// Dialer establishes cloud connections with backoff (required).
	Dialer *transport.Dialer
	// TTL is the lease duration declared to the cloud (default 2s). The
	// cloud evicts the edge TTL after the last renewal it saw.
	TTL time.Duration
	// Interval is the renewal period (default TTL/3, so two renewals may be
	// lost before the lease lapses).
	Interval time.Duration
	// AckTimeout bounds each renewal's ack wait (default TTL).
	AckTimeout time.Duration
	// Obs, when non-nil, is the observer the heartbeat reports through
	// (edge_lease_renewals_total, edge_lease_redials_total).
	Obs *obs.Observer
}

// Run renews the lease until stop closes. It blocks; run it in a goroutine.
// Failures never terminate the loop — a dead cloud is exactly when the
// heartbeat must keep dialing, so the lease is re-granted the moment a
// restarted cloud comes back.
func (h *Heartbeat) Run(stop <-chan struct{}) {
	ttl := h.TTL
	if ttl <= 0 {
		ttl = 2 * time.Second
	}
	interval := h.Interval
	if interval <= 0 {
		interval = ttl / 3
	}
	ackTimeout := h.AckTimeout
	if ackTimeout <= 0 {
		ackTimeout = ttl
	}
	o := h.Obs
	if o == nil {
		o = obs.New()
	}
	renewals := o.Counter("edge_lease_renewals_total", "membership lease renewals acked by the cloud")
	redials := o.Counter("edge_lease_redials_total", "heartbeat reconnects after the first dial")

	var conn transport.Conn
	defer func() {
		if conn != nil {
			_ = conn.Close()
		}
	}()
	dialed := false
	pause := func(d time.Duration) bool {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-stop:
			return false
		case <-t.C:
			return true
		}
	}
	for {
		select {
		case <-stop:
			return
		default:
		}
		if conn == nil {
			c, err := h.Dialer.DialRetry()
			if err != nil {
				// The dialer's patience ran out; rest one backoff step and
				// start over.
				if !pause(h.Dialer.Backoff(0)) {
					return
				}
				continue
			}
			if dialed {
				redials.Inc()
			}
			dialed = true
			conn = c
		}
		if err := session.RenewLease(conn, h.Edge, ttl, ackTimeout); err != nil {
			_ = conn.Close()
			conn = nil
			if !transport.IsConnError(err) {
				// An application-level refusal (e.g. a misconfigured edge id)
				// will not heal by redialing fast; rest a full interval.
				var rej *session.RejectedError
				if errors.As(err, &rej) && !pause(interval) {
					return
				}
			}
			continue
		}
		renewals.Inc()
		if !pause(interval) {
			return
		}
	}
}
