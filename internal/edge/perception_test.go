package edge

import (
	"testing"

	"repro/internal/lattice"
	"repro/internal/sensor"
	"repro/internal/transport"
)

func TestEnablePerceptionValidation(t *testing.T) {
	d := NewDistributor(lattice.NewPaper(), 1)
	if err := d.EnablePerception(sensor.Mask(0x80)); err == nil {
		t.Error("invalid mask must error")
	}
	if err := d.EnablePerception(sensor.MaskOf(sensor.Radar)); err != nil {
		t.Fatal(err)
	}
	if d.PerceptionShare() != sensor.MaskOf(sensor.Radar) {
		t.Error("perception share not recorded")
	}
	if err := d.EnablePerception(0); err != nil {
		t.Fatal(err)
	}
	if d.PerceptionShare() != 0 {
		t.Error("zero mask should disable perception")
	}
}

// TestEdgePerceptionFollowsLattice: the edge shares radar; only vehicles
// whose decision covers radar receive the edge items, and they are tagged
// with the edge owner id.
func TestEdgePerceptionFollowsLattice(t *testing.T) {
	d := NewDistributor(lattice.NewPaper(), 1)
	if err := d.EnablePerception(sensor.MaskOf(sensor.Radar)); err != nil {
		t.Fatal(err)
	}
	if err := d.BeginRound(1, 1); err != nil {
		t.Fatal(err)
	}
	// Vehicle 1 shares everything (covers radar); vehicle 2 shares camera
	// only (does not cover radar); vehicle 3 shares radar only (covers it).
	for _, u := range []transport.Upload{
		upload(1, 1, 1, sensor.Camera, sensor.LiDAR, sensor.Radar),
		upload(2, 1, 5, sensor.Camera),
		upload(3, 1, 7, sensor.Radar),
	} {
		if err := d.AddUpload(u); err != nil {
			t.Fatal(err)
		}
	}
	out := d.Distribute()

	countEdge := func(items []transport.Item) int {
		n := 0
		for _, it := range items {
			if it.Owner == EdgeOwner {
				if it.Modality != sensor.Radar {
					t.Errorf("edge item has modality %v, want radar", it.Modality)
				}
				n++
			}
		}
		return n
	}
	if countEdge(out[1]) != 1 {
		t.Errorf("vehicle 1 (P1) should receive the edge radar item, got %v", out[1])
	}
	if countEdge(out[2]) != 0 {
		t.Errorf("vehicle 2 (camera-only) must not receive edge radar, got %v", out[2])
	}
	if countEdge(out[3]) != 1 {
		t.Errorf("vehicle 3 (radar-only) should receive the edge radar item, got %v", out[3])
	}
}

// TestEdgePerceptionRespectsRatio: at x = 0 no edge items are delivered.
func TestEdgePerceptionRespectsRatio(t *testing.T) {
	d := NewDistributor(lattice.NewPaper(), 1)
	if err := d.EnablePerception(sensor.MaskAll); err != nil {
		t.Fatal(err)
	}
	if err := d.BeginRound(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.AddUpload(upload(1, 1, 1, sensor.Camera, sensor.LiDAR, sensor.Radar)); err != nil {
		t.Fatal(err)
	}
	for v, items := range d.Distribute() {
		if len(items) != 0 {
			t.Errorf("vehicle %d received %d items at x=0", v, len(items))
		}
	}
}

// TestEdgePerceptionSeqAdvances: edge item sequence numbers are unique
// across rounds.
func TestEdgePerceptionSeqAdvances(t *testing.T) {
	d := NewDistributor(lattice.NewPaper(), 1)
	if err := d.EnablePerception(sensor.MaskOf(sensor.LiDAR)); err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for round := 1; round <= 3; round++ {
		if err := d.BeginRound(round, 1); err != nil {
			t.Fatal(err)
		}
		if err := d.AddUpload(upload(1, round, 1, sensor.Camera, sensor.LiDAR, sensor.Radar)); err != nil {
			t.Fatal(err)
		}
		for _, items := range d.Distribute() {
			for _, it := range items {
				if it.Owner == EdgeOwner {
					if seen[it.Seq] {
						t.Fatalf("edge seq %d reused", it.Seq)
					}
					seen[it.Seq] = true
				}
			}
		}
	}
	if len(seen) != 3 {
		t.Errorf("expected 3 distinct edge items, saw %d", len(seen))
	}
}
