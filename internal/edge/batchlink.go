package edge

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/session"
)

// BatchLink maintains a census-batch connection to a consensus coordinator
// (a shard forwarding its region group to the aggregation tier, or a load
// generator multiplexing many regions over one conn). It is CloudLink's
// batched sibling: Report dials lazily with backoff, submits one
// CensusBatch frame for the round, and — when the link drops or the reply
// times out — redials and re-submits the same batch. The receiving tier
// treats a re-submitted batch as last-write-wins duplicates, so retries are
// harmless, and a batch for an already-completed round is answered
// immediately with the regions' current ratios.
type BatchLink struct {
	// Shard identifies the submitting coordinator in batch frames
	// (informational; routing is by each census's Edge id).
	Shard int
	// Dialer establishes coordinator connections with backoff (required).
	Dialer *transport.Dialer
	// ReplyTimeout bounds the wait for the RatioBatch reply before the link
	// is declared dead and the batch re-submitted (0 = wait forever).
	ReplyTimeout time.Duration
	// Attempts is the number of submit attempts per Report (default 3).
	Attempts int
	// Obs, when non-nil, is the observer the link reports through. Set it
	// before the first Report; nil falls back to a private registry.
	Obs *obs.Observer
	// OnCorrection, when non-nil, is invoked (outside the link's lock) for
	// each ratio correction the coordinator pushes after a fixed-lag rewind.
	// Unlike CloudLink the batched link spans many regions, so the whole
	// frame — corrected edge, round, sequence, ratio — is handed through: a
	// shard coordinator forwards it verbatim to the owning edge's session,
	// preserving the aggregator-assigned sequence the edges' monotonic
	// adoption depends on. Stale or redelivered frames are dropped by the
	// link's own sequence check before the callback fires.
	OnCorrection func(rc transport.RatioCorrection)

	// reqMu serializes whole Report exchanges: a shard coordinator forwards
	// concurrent rounds and late stragglers over one link, and interleaved
	// request/reply pairs on a single connection would cross replies between
	// waiters (a consumed frame is never redelivered to the right exchange).
	reqMu sync.Mutex

	mu          sync.Mutex
	conn        transport.Conn
	dialed      bool
	lastSeq     int64
	redials     *obs.Counter // edge_cloud_redials_total
	reports     *obs.Counter // edge_batch_reports_total
	corrections *obs.Counter // edge_ratio_corrections_total
}

// metricsLocked lazily binds the link's counters to Obs (or a private
// observer). Called with l.mu held.
func (l *BatchLink) metricsLocked() {
	if l.redials != nil {
		return
	}
	o := l.Obs
	if o == nil {
		o = obs.New()
		l.Obs = o
	}
	l.redials = o.Counter("edge_cloud_redials_total", "cloud-link reconnects after the first dial")
	l.reports = o.Counter("edge_batch_reports_total", "census batches submitted upstream (including re-submissions)")
	l.corrections = o.Counter("edge_ratio_corrections_total", "ratio corrections adopted after cloud fixed-lag rewinds")
}

// Redials returns how many times the link re-established its connection
// after the first dial.
func (l *BatchLink) Redials() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.metricsLocked()
	return int(l.redials.Value())
}

// Close drops the link's connection, if any.
func (l *BatchLink) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn == nil {
		return nil
	}
	err := l.conn.Close()
	l.conn = nil
	return err
}

// ensureConn returns the live connection, dialing one if needed.
func (l *BatchLink) ensureConn() (transport.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.metricsLocked()
	if l.conn != nil {
		return l.conn, nil
	}
	if l.Dialer == nil {
		return nil, fmt.Errorf("shard %d: batch link has no dialer", l.Shard)
	}
	conn, err := l.Dialer.DialRetry()
	if err != nil {
		return nil, fmt.Errorf("shard %d: dialing coordinator: %w", l.Shard, err)
	}
	if l.dialed {
		l.redials.Inc()
	}
	l.dialed = true
	l.conn = conn
	return conn, nil
}

// dropConn discards conn if it is still the link's current connection.
func (l *BatchLink) dropConn(conn transport.Conn) {
	_ = conn.Close()
	l.mu.Lock()
	if l.conn == conn {
		l.conn = nil
	}
	l.mu.Unlock()
}

// handleOther absorbs non-reply frames that interleave with a batch
// exchange: ratio corrections are adopted monotonically by sequence,
// anything else fails the exchange.
func (l *BatchLink) handleOther(m transport.Message) error {
	if m.Kind != transport.KindRatioCorrection {
		return fmt.Errorf("shard %d: unexpected %s frame during batch exchange", l.Shard, m.Kind)
	}
	var rc transport.RatioCorrection
	if err := transport.Decode(m, transport.KindRatioCorrection, &rc); err != nil {
		return err
	}
	l.mu.Lock()
	if rc.Seq <= l.lastSeq {
		l.mu.Unlock()
		return nil
	}
	l.lastSeq = rc.Seq
	l.corrections.Inc()
	cb := l.OnCorrection
	l.mu.Unlock()
	if cb != nil {
		cb(rc)
	}
	return nil
}

// Report submits one round's census batch and returns the coordinator's
// RatioBatch answer (reply.Round = round+1), reconnecting and re-submitting
// across connection failures.
func (l *BatchLink) Report(round int, censuses []transport.Census) (transport.RatioBatch, error) {
	l.reqMu.Lock()
	defer l.reqMu.Unlock()
	batch := transport.CensusBatch{Shard: l.Shard, Round: round, Censuses: censuses}
	attempts := l.Attempts
	if attempts <= 0 {
		attempts = 3
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		conn, err := l.ensureConn()
		if err != nil {
			return transport.RatioBatch{}, err // the dialer already retried with backoff
		}
		l.mu.Lock()
		l.reports.Inc()
		l.mu.Unlock()
		reply, err := session.ReportCensusBatch(conn, batch, l.ReplyTimeout, l.handleOther)
		if err == nil {
			return reply, nil
		}
		l.dropConn(conn)
		if !transport.IsConnError(err) {
			return transport.RatioBatch{}, fmt.Errorf("shard %d: reporting round %d: %w", l.Shard, round, err)
		}
		lastErr = err
	}
	return transport.RatioBatch{}, fmt.Errorf("shard %d: reporting round %d failed after %d attempts: %w",
		l.Shard, round, attempts, lastErr)
}
