package edge

import (
	"testing"
	"time"

	"repro/internal/transport"
)

// TestBatchLinkResubmitsAfterDrop: when the upstream connection dies before
// the RatioBatch reply arrives, the link redials and re-submits the same
// round's batch, skipping stale replies once reconnected.
func TestBatchLinkResubmitsAfterDrop(t *testing.T) {
	net := transport.NewInprocNetwork()
	l, err := net.Listen("agg")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	serverErr := make(chan error, 1)
	go func() {
		serverErr <- func() error {
			// Session 1: swallow the batch and drop the link.
			c1, err := l.Accept()
			if err != nil {
				return err
			}
			if _, err := c1.Recv(); err != nil {
				return err
			}
			_ = c1.Close()

			// Session 2: answer the re-submission, preceded by a stale reply
			// the link must skip.
			c2, err := l.Accept()
			if err != nil {
				return err
			}
			defer c2.Close()
			m, err := c2.Recv()
			if err != nil {
				return err
			}
			var batch transport.CensusBatch
			if err := transport.Decode(m, transport.KindCensusBatch, &batch); err != nil {
				return err
			}
			if batch.Shard != 2 || len(batch.Censuses) != 2 {
				return nil // the assertion below fails on the zero reply
			}
			stale, err := transport.Encode(transport.KindRatioBatch,
				transport.RatioBatch{Round: batch.Round, Edges: []int{0, 1}, X: []float64{0.1, 0.1}})
			if err != nil {
				return err
			}
			if err := c2.Send(stale); err != nil {
				return err
			}
			good, err := transport.Encode(transport.KindRatioBatch,
				transport.RatioBatch{Round: batch.Round + 1, Edges: []int{0, 1}, X: []float64{0.75, 0.25}})
			if err != nil {
				return err
			}
			return c2.Send(good)
		}()
	}()

	link := &BatchLink{
		Shard: 2,
		Dialer: &transport.Dialer{
			Dial:  func() (transport.Conn, error) { return net.Dial("agg") },
			Seed:  1,
			Sleep: func(time.Duration) {},
		},
		ReplyTimeout: 2 * time.Second,
	}
	defer link.Close()

	reply, err := link.Report(3, []transport.Census{
		{Edge: 0, Round: 3, Counts: []int{1, 2}},
		{Edge: 1, Round: 3, Counts: []int{3, 0}},
	})
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	if reply.Round != 4 || len(reply.X) != 2 || reply.X[0] != 0.75 {
		t.Errorf("reply = %+v, want round 4 with the non-stale ratios", reply)
	}
	if got := link.Redials(); got != 1 {
		t.Errorf("Redials = %d, want 1", got)
	}
	if err := <-serverErr; err != nil {
		t.Fatalf("fake aggregator: %v", err)
	}
}

// TestBatchLinkAdoptsRatioCorrections: corrections interleaved with a batch
// exchange are adopted monotonically by sequence, carrying the corrected
// edge id through to the callback.
func TestBatchLinkAdoptsRatioCorrections(t *testing.T) {
	net := transport.NewInprocNetwork()
	l, err := net.Listen("agg")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	serverErr := make(chan error, 1)
	go func() {
		serverErr <- func() error {
			c, err := l.Accept()
			if err != nil {
				return err
			}
			defer c.Close()
			m, err := c.Recv()
			if err != nil {
				return err
			}
			var batch transport.CensusBatch
			if err := transport.Decode(m, transport.KindCensusBatch, &batch); err != nil {
				return err
			}
			for _, rc := range []transport.RatioCorrection{
				{Edge: 5, Round: 6, Seq: 5, X: 0.61}, // adopted
				{Edge: 5, Round: 6, Seq: 5, X: 0.61}, // redelivered: dropped
				{Edge: 9, Round: 5, Seq: 3, X: 0.40}, // reordered stale seq: dropped
				{Edge: 9, Round: 7, Seq: 8, X: 0.66}, // adopted
			} {
				f, err := transport.Encode(transport.KindRatioCorrection, rc)
				if err != nil {
					return err
				}
				if err := c.Send(f); err != nil {
					return err
				}
			}
			reply, err := transport.Encode(transport.KindRatioBatch,
				transport.RatioBatch{Round: batch.Round + 1, Edges: []int{5, 9}, X: []float64{0.7, 0.66}})
			if err != nil {
				return err
			}
			return c.Send(reply)
		}()
	}()

	type adoption struct {
		edge, round int
		x           float64
	}
	var adopted []adoption
	link := &BatchLink{
		Shard: 1,
		Dialer: &transport.Dialer{
			Dial:  func() (transport.Conn, error) { return net.Dial("agg") },
			Seed:  1,
			Sleep: func(time.Duration) {},
		},
		ReplyTimeout: 2 * time.Second,
		OnCorrection: func(rc transport.RatioCorrection) {
			adopted = append(adopted, adoption{rc.Edge, rc.Round, rc.X})
		},
	}
	defer link.Close()

	if _, err := link.Report(7, []transport.Census{
		{Edge: 5, Round: 7, Counts: []int{1}},
		{Edge: 9, Round: 7, Counts: []int{2}},
	}); err != nil {
		t.Fatalf("Report: %v", err)
	}
	want := []adoption{{5, 6, 0.61}, {9, 7, 0.66}}
	if len(adopted) != len(want) {
		t.Fatalf("adopted %v, want %v", adopted, want)
	}
	for i, w := range want {
		if adopted[i] != w {
			t.Errorf("adoption %d = %v, want %v", i, adopted[i], w)
		}
	}
	if err := <-serverErr; err != nil {
		t.Fatalf("fake aggregator: %v", err)
	}
}
