package edge

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/sensor"
	"repro/internal/transport"
	"repro/internal/transport/session"
)

// Server is the networked edge server: it accepts vehicle connections on a
// transport.Listener, drives synchronized data-sharing rounds, and talks to
// the cloud through a client connection. The same server runs over the
// in-process transport (simulation) and TCP (distributed demo).
type Server struct {
	// ID identifies this edge server / region to the cloud.
	ID int

	dist *Distributor

	mu       sync.Mutex
	conns    map[int]transport.Conn
	shares   []float64 // last round's decision distribution
	uploaded chan struct{}
	closed   chan struct{}
	once     sync.Once
	wg       sync.WaitGroup

	obsv    *obs.Observer
	metrics edgeMetrics
}

// edgeMetrics are the edge server's registry-backed instruments.
type edgeMetrics struct {
	rounds        *obs.Counter   // edge_rounds_total
	uploads       *obs.Counter   // edge_round_uploads_total
	vehicles      *obs.Gauge     // edge_vehicles
	roundDuration *obs.Histogram // edge_round_duration_seconds
}

func newEdgeMetrics(o *obs.Observer) edgeMetrics {
	return edgeMetrics{
		rounds:        o.Counter("edge_rounds_total", "data-sharing rounds driven by this edge server"),
		uploads:       o.Counter("edge_round_uploads_total", "vehicle uploads collected across rounds"),
		vehicles:      o.Gauge("edge_vehicles", "currently registered vehicle connections"),
		roundDuration: o.Histogram("edge_round_duration_seconds", "RunRound walltime (steps 3-5)", nil),
	}
}

// NewServer builds an edge server with the given id over the decision
// lattice.
func NewServer(id int, lat *lattice.Lattice, seed int64) *Server {
	k := lat.K()
	shares := make([]float64, k)
	for i := range shares {
		shares[i] = 1 / float64(k)
	}
	o := obs.New()
	return &Server{
		ID:       id,
		dist:     NewDistributor(lat, seed),
		conns:    make(map[int]transport.Conn),
		shares:   shares,
		uploaded: make(chan struct{}, 1024),
		closed:   make(chan struct{}),
		obsv:     o,
		metrics:  newEdgeMetrics(o),
	}
}

// Instrument re-points the server's metrics and per-census round spans at
// the given observer, so several components report through one registry.
// Call before Serve; counts already accumulated are not carried over.
func (s *Server) Instrument(o *obs.Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obsv = o
	s.metrics = newEdgeMetrics(o)
	s.metrics.vehicles.Set(float64(len(s.conns)))
}

// Serve accepts vehicle connections until the listener is torn down or the
// server closes. Transient accept failures — injected faults and real ones
// alike — are retried with bounded backoff (see transport.AcceptLoop). It
// blocks; run it in a goroutine.
func (s *Server) Serve(l transport.Listener) {
	transport.AcceptLoop(l, s.closed, func(conn transport.Conn) {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	})
}

// Close terminates the server: vehicle connections are closed and Serve
// goroutines drain.
func (s *Server) Close() {
	s.once.Do(func() { close(s.closed) })
	s.mu.Lock()
	for _, c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// SetShares seeds the policy broadcast's last-round decision distribution,
// so a restarted server resumes from the distribution its predecessor
// published instead of the uniform cold-start prior (which would perturb
// every vehicle's next revision). Call before Serve with a length-K slice.
func (s *Server) SetShares(shares []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shares = append([]float64(nil), shares...)
}

// EnablePerception configures edge-side perception (see perception.go):
// the server contributes road-side sensor items of the given modalities to
// every round's distribution.
func (s *Server) EnablePerception(share sensor.Mask) error {
	return s.dist.EnablePerception(share)
}

// NumVehicles returns the number of registered vehicle connections.
func (s *Server) NumVehicles() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

func (s *Server) handleConn(conn transport.Conn) {
	sess := session.Wrap(conn)
	defer sess.Close()

	// Registration handshake (AcceptRegistration acks a malformed hello).
	hello, err := sess.AcceptRegistration()
	if err != nil {
		return
	}
	s.mu.Lock()
	if old, dup := s.conns[hello.Vehicle]; dup {
		// The vehicle reconnected before we noticed the old session die:
		// the new session wins, the stale conn is closed.
		_ = old.Close()
	}
	s.conns[hello.Vehicle] = conn
	s.metrics.vehicles.Set(float64(len(s.conns)))
	s.mu.Unlock()
	_ = sess.Ack(nil)

	defer func() {
		s.mu.Lock()
		// Only deregister if a newer session has not replaced this conn.
		if s.conns[hello.Vehicle] == conn {
			delete(s.conns, hello.Vehicle)
			s.metrics.vehicles.Set(float64(len(s.conns)))
		}
		s.mu.Unlock()
	}()

	_ = sess.Serve(map[transport.Kind]session.Handler{
		transport.KindUpload: func(m transport.Message) error {
			var up transport.Upload
			if err := transport.Decode(m, transport.KindUpload, &up); err != nil {
				_ = sess.Ack(err)
				return nil
			}
			err := s.dist.AddUpload(up)
			if errors.Is(err, ErrStaleUpload) {
				// A delayed policy made the vehicle upload for an old
				// round; harmless, drop it without an error ack.
				return sess.Ack(nil)
			}
			_ = sess.Ack(err)
			if err == nil {
				select {
				case s.uploaded <- struct{}{}:
				case <-s.closed:
					return transport.ErrClosed
				}
			}
			return nil
		},
	}, nil) // nil unknown handler: ack "unexpected message kind", keep serving
}

// RunRound drives one synchronized data-sharing round: broadcast the policy
// (step ③), wait until every registered vehicle has uploaded or the timeout
// expires (step ④), distribute the collected items (step ⑤), and return the
// decision census (for step ①).
func (s *Server) RunRound(round int, x float64, timeout time.Duration) ([]int, error) {
	start := time.Now()
	s.mu.Lock()
	m := s.metrics
	span := s.obsv.Span("edge_round", obs.A("edge", s.ID), obs.A("round", round), obs.A("x", x))
	s.mu.Unlock()
	if err := s.dist.BeginRound(round, x); err != nil {
		span.End(obs.A("error", err.Error()))
		return nil, err
	}
	// Drain stale upload signals from previous rounds.
	for {
		select {
		case <-s.uploaded:
			continue
		default:
		}
		break
	}

	s.mu.Lock()
	conns := make(map[int]transport.Conn, len(s.conns))
	for v, c := range s.conns {
		conns[v] = c
	}
	shares := append([]float64(nil), s.shares...)
	s.mu.Unlock()

	policy, err := transport.Encode(transport.KindPolicy, transport.Policy{
		Round:  round,
		X:      x,
		Shares: shares,
	})
	if err != nil {
		return nil, err
	}
	for _, c := range conns {
		// Dead connections are detected by their read loop; ignore here.
		_ = c.Send(policy)
	}

	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for s.dist.NumUploads() < len(conns) {
		select {
		case <-s.uploaded:
		case <-deadline.C:
			// Proceed with whatever arrived.
			span.Event("upload_deadline", obs.A("uploads", s.dist.NumUploads()), obs.A("vehicles", len(conns)))
			goto distribute
		case <-s.closed:
			span.End(obs.A("error", "closed"))
			return nil, transport.ErrClosed
		}
	}
distribute:
	m.uploads.Add(int64(s.dist.NumUploads()))
	span.Event("distribute", obs.A("uploads", s.dist.NumUploads()))
	deliveries := s.dist.Distribute()
	for v, items := range deliveries {
		conn, ok := conns[v]
		if !ok {
			continue
		}
		m, err := transport.Encode(transport.KindDelivery, transport.Delivery{Round: round, Items: items})
		if err != nil {
			return nil, err
		}
		_ = conn.Send(m)
	}

	census := s.dist.Census()
	s.mu.Lock()
	s.shares = Shares(census)
	s.mu.Unlock()
	m.rounds.Inc()
	m.roundDuration.Observe(time.Since(start).Seconds())
	total := 0
	for _, c := range census {
		total += c
	}
	span.End(obs.A("census_total", total))
	return census, nil
}

// ReportCensus sends the census to the cloud on conn and waits for the
// ratio answer for the next round.
func (s *Server) ReportCensus(conn transport.Conn, round int, census []int) (float64, error) {
	x, err := session.ReportCensus(conn, s.ID, round, census, 0)
	var rej *session.RejectedError
	switch {
	case err == nil:
		return x, nil
	case errors.As(err, &rej):
		return 0, fmt.Errorf("edge: cloud rejected census: %s", rej.Reason)
	default:
		return 0, fmt.Errorf("edge: reporting census: %w", err)
	}
}
