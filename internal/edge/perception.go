package edge

import (
	"fmt"

	"repro/internal/lattice"
	"repro/internal/sensor"
	"repro/internal/transport"
)

// Edge-side perception (the paper's Section VII future-work direction:
// "edge servers can perceive their surrounding environment as well and
// distribute their own perception to the bypassed vehicles"). The edge
// server owns road-side sensors and contributes their data to every round's
// distribution. Access follows the same lattice rule as vehicle data: the
// edge acts as a virtual sharer with the decision matching its sensor set,
// so only vehicles sharing at least that much can read it — keeping the
// incentive structure intact (road-side data rewards generous sharers).

// EdgeOwner is the Item owner id used for edge-server perception.
const EdgeOwner = -1

// EnablePerception configures the distributor to contribute edge-owned
// items of the given modalities each round. A zero mask disables the
// feature.
func (d *Distributor) EnablePerception(share sensor.Mask) error {
	if !share.Valid() {
		return fmt.Errorf("edge: invalid perception mask %#x", uint8(share))
	}
	decision := lattice.Decision(0)
	if share != 0 {
		dec, err := d.lat.DecisionOf(share)
		if err != nil {
			return fmt.Errorf("edge: perception mask: %w", err)
		}
		decision = dec
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.edgeShare = share
	d.edgeDecision = decision
	return nil
}

// PerceptionShare returns the configured edge sensor set (zero when
// disabled).
func (d *Distributor) PerceptionShare() sensor.Mask {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.edgeShare
}

// edgeItems materializes this round's edge-owned items.
func (d *Distributor) edgeItems() []transport.Item {
	if d.edgeShare == 0 {
		return nil
	}
	items := make([]transport.Item, 0, d.edgeShare.Count())
	for _, t := range d.edgeShare.Types() {
		d.edgeSeq++
		items = append(items, transport.Item{Owner: EdgeOwner, Modality: t, Seq: d.edgeSeq})
	}
	return items
}
