package shard

import (
	"fmt"
	"sort"
)

// Table is the materialized assignment of a lattice's regions to a ring's
// shards: Owners[region] indexes into Shards. Building it once per process
// start (regions and membership are deployment-static here) keeps routing a
// slice lookup, and its JSON form is pinned by a golden-file test so any
// re-sharding shows up as a deliberate diff.
type Table struct {
	Shards []string `json:"shards"`
	Owners []int    `json:"owners"`
}

// BuildTable assigns regions 0..m-1 across the ring.
func BuildTable(r *Ring, m int) (*Table, error) {
	if m <= 0 {
		return nil, fmt.Errorf("shard: table needs at least one region, got %d", m)
	}
	names := r.Shards()
	index := make(map[string]int, len(names))
	for i, s := range names {
		index[s] = i
	}
	t := &Table{Shards: names, Owners: make([]int, m)}
	for region := 0; region < m; region++ {
		t.Owners[region] = index[r.Owner(region)]
	}
	return t, nil
}

// Owner returns the index (into Shards) of the shard owning region, or an
// error for a region outside the table.
func (t *Table) Owner(region int) (int, error) {
	if region < 0 || region >= len(t.Owners) {
		return 0, fmt.Errorf("shard: region %d outside table of %d regions", region, len(t.Owners))
	}
	return t.Owners[region], nil
}

// Regions returns the sorted region group owned by shard index i.
func (t *Table) Regions(i int) []int {
	var out []int
	for region, owner := range t.Owners {
		if owner == i {
			out = append(out, region)
		}
	}
	sort.Ints(out)
	return out
}

// Loads returns the per-shard region counts, aligned with Shards.
func (t *Table) Loads() []int {
	loads := make([]int, len(t.Shards))
	for _, owner := range t.Owners {
		loads[owner]++
	}
	return loads
}
