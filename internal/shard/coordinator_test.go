package shard

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/edge"
	"repro/internal/game"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/transport"
)

// lineGraph is the 2-region test graph shared with the cloud tests.
type lineGraph struct{}

func (lineGraph) M() int { return 2 }
func (lineGraph) Gamma(i, j int) float64 {
	if i == j {
		return 0.8
	}
	return 0.2
}
func (lineGraph) Neighbors(i int) []int {
	if i == 0 {
		return []int{1}
	}
	return []int{0}
}

// newAggregator builds one aggregation-tier server over the 2-region test
// game. Each call constructs an independent but identical instance, so one
// can serve as a lossless baseline for another.
func newAggregator(t *testing.T) *cloud.Server {
	t.Helper()
	m, err := game.NewModel(lattice.PaperPayoffs(), lineGraph{}, []float64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	target := []float64{0.7, 0, 0, 0, 0, 0, 0, 0}
	field, err := policy.NewUniformField(2, target, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for k := 1; k < 8; k++ {
			field.P[i][k].Lo, field.P[i][k].Hi = 0, 1
		}
	}
	fds, err := policy.NewFDS(m, field, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := cloud.NewServer(fds, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// startAggregator serves srv on the in-process network under name.
func startAggregator(t *testing.T, net *transport.InprocNetwork, name string, srv *cloud.Server) {
	t.Helper()
	l, err := net.Listen(name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go srv.Serve(l)
}

// newTestCoordinator wires a coordinator owning both regions to the named
// aggregator over the in-process network.
func newTestCoordinator(t *testing.T, net *transport.InprocNetwork, aggName string, deadline time.Duration) *Coordinator {
	t.Helper()
	upstream := &edge.BatchLink{
		Shard: 0,
		Dialer: &transport.Dialer{
			Dial:  func() (transport.Conn, error) { return net.Dial(aggName) },
			Seed:  1,
			Sleep: func(time.Duration) {},
		},
		ReplyTimeout: 5 * time.Second,
	}
	c, err := NewCoordinator(Config{
		ID:       0,
		Regions:  []int{0, 1},
		K:        8,
		Deadline: deadline,
		Upstream: upstream,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		upstream.Close()
	})
	return c
}

func metricValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	for _, p := range reg.Snapshot() {
		if p.Name == name {
			return p.Value
		}
	}
	t.Fatalf("metric %s not in registry snapshot", name)
	return 0
}

// runRound drives both regions through one coordinator round concurrently
// and returns the answered ratios.
func runRound(t *testing.T, c *Coordinator, round int, counts map[int][]int) map[int]float64 {
	t.Helper()
	var mu sync.Mutex
	out := make(map[int]float64, len(counts))
	var wg sync.WaitGroup
	for edge, cs := range counts {
		edge, cs := edge, cs
		wg.Add(1)
		go func() {
			defer wg.Done()
			x, err := c.Submit(transport.Census{Edge: edge, Round: round, Counts: cs})
			if err != nil {
				t.Errorf("round %d edge %d: %v", round, edge, err)
				return
			}
			mu.Lock()
			out[edge] = x
			mu.Unlock()
		}()
	}
	wg.Wait()
	return out
}

// runDirectRound drives the same censuses straight into a baseline server.
func runDirectRound(t *testing.T, srv *cloud.Server, round int, counts map[int][]int) map[int]float64 {
	t.Helper()
	var mu sync.Mutex
	out := make(map[int]float64, len(counts))
	var wg sync.WaitGroup
	for edge, cs := range counts {
		edge, cs := edge, cs
		wg.Add(1)
		go func() {
			defer wg.Done()
			x, err := srv.Submit(transport.Census{Edge: edge, Round: round, Counts: cs})
			if err != nil {
				t.Errorf("baseline round %d edge %d: %v", round, edge, err)
				return
			}
			mu.Lock()
			out[edge] = x
			mu.Unlock()
		}()
	}
	wg.Wait()
	return out
}

// TestCoordinatorAnswersAggregatorRatios: a round submitted through the
// shard coordinator produces exactly the ratios and consensus-state hash a
// direct single-server deployment produces from the same censuses.
func TestCoordinatorAnswersAggregatorRatios(t *testing.T) {
	net := transport.NewInprocNetwork()
	agg := newAggregator(t)
	defer agg.Close()
	startAggregator(t, net, "agg", agg)
	direct := newAggregator(t)
	defer direct.Close()

	c := newTestCoordinator(t, net, "agg", 0)

	rounds := []map[int][]int{
		{0: {5, 1, 0, 0, 1, 0, 1, 0}, 1: {2, 2, 1, 0, 0, 1, 0, 2}},
		{0: {6, 0, 1, 0, 0, 0, 1, 0}, 1: {4, 1, 0, 1, 0, 0, 0, 2}},
		{0: {7, 0, 0, 0, 1, 0, 0, 0}, 1: {5, 1, 1, 0, 0, 0, 0, 1}},
	}
	for round, counts := range rounds {
		got := runRound(t, c, round, counts)
		want := runDirectRound(t, direct, round, counts)
		for edge := range counts {
			if got[edge] != want[edge] {
				t.Errorf("round %d edge %d: ratio %v through shard, %v direct", round, edge, got[edge], want[edge])
			}
		}
	}
	if got, want := agg.StateHash(), direct.StateHash(); got != want {
		t.Errorf("aggregator hash %08x != direct single-server hash %08x", got, want)
	}
	if c.Latest() != 2 {
		t.Errorf("coordinator latest = %d, want 2", c.Latest())
	}
	reg := c.Registry()
	if n := metricValue(t, reg, "shard_rounds_total"); n != 3 {
		t.Errorf("shard_rounds_total = %v, want 3", n)
	}
	if n := metricValue(t, reg, "shard_forwards_total"); n != 3 {
		t.Errorf("shard_forwards_total = %v, want 3", n)
	}
}

// TestCoordinatorDegradedForwardAndLateRewind: a region that misses the
// shard's deadline is forwarded late as a single-census batch, the
// aggregator rewinds its lag window, and the global fold ends bit-identical
// to a lossless baseline.
func TestCoordinatorDegradedForwardAndLateRewind(t *testing.T) {
	net := transport.NewInprocNetwork()
	agg := newAggregator(t)
	defer agg.Close()
	agg.SetFixedLag(8)
	// The aggregator's own deadline is the safety net that completes a round
	// only some shards reported into; the shard's deadline fires first.
	agg.SetRoundDeadline(50 * time.Millisecond)
	startAggregator(t, net, "agg", agg)
	baseline := newAggregator(t)
	defer baseline.Close()

	c := newTestCoordinator(t, net, "agg", 25*time.Millisecond)

	r0 := map[int][]int{0: {5, 1, 0, 0, 1, 0, 1, 0}, 1: {2, 2, 1, 0, 0, 1, 0, 2}}
	r1 := map[int][]int{0: {6, 0, 1, 0, 0, 0, 1, 0}, 1: {4, 1, 0, 1, 0, 0, 0, 2}}

	// Lossless baseline: both regions in both rounds.
	runDirectRound(t, baseline, 0, r0)

	// Through the shard: only region 0 makes round 0's deadline.
	if _, err := c.Submit(transport.Census{Edge: 0, Round: 0, Counts: r0[0]}); err != nil {
		t.Fatalf("degraded round: %v", err)
	}
	// Vacuousness guard: the degraded fold must actually differ before the
	// straggler lands, or the equality below proves nothing.
	if agg.StateHash() == baseline.StateHash() {
		t.Fatal("degraded fold matches lossless baseline; rewind test is vacuous")
	}
	// The straggler arrives after the round was forwarded: relayed upstream
	// individually, aggregator rewinds, fold converges to the baseline.
	if _, err := c.Submit(transport.Census{Edge: 1, Round: 0, Counts: r0[1]}); err != nil {
		t.Fatalf("late straggler: %v", err)
	}
	if got, want := agg.StateHash(), baseline.StateHash(); got != want {
		t.Fatalf("post-rewind hash %08x != lossless baseline %08x", got, want)
	}

	// A full follow-up round keeps them in lockstep.
	runDirectRound(t, baseline, 1, r1)
	runRound(t, c, 1, r1)
	if got, want := agg.StateHash(), baseline.StateHash(); got != want {
		t.Errorf("final hash %08x != lossless baseline %08x", got, want)
	}

	reg := c.Registry()
	if n := metricValue(t, reg, "shard_degraded_rounds_total"); n != 1 {
		t.Errorf("shard_degraded_rounds_total = %v, want 1", n)
	}
	if n := metricValue(t, reg, "shard_late_censuses_total"); n < 1 {
		t.Errorf("shard_late_censuses_total = %v, want >= 1", n)
	}
	if n := metricValue(t, agg.Registry(), "consensus_rewinds_total"); n < 1 {
		t.Errorf("aggregator consensus_rewinds_total = %v, want >= 1", n)
	}
}

// TestCoordinatorRecoversWatermark: a coordinator that crashes after
// journaling a round recovers its watermark from the state directory,
// re-forwards the journaled batch (the aggregator absorbs the duplicate),
// and continues with the next round.
func TestCoordinatorRecoversWatermark(t *testing.T) {
	net := transport.NewInprocNetwork()
	agg := newAggregator(t)
	defer agg.Close()
	agg.SetFixedLag(8)
	startAggregator(t, net, "agg", agg)

	dir := t.TempDir()
	r0 := map[int][]int{0: {5, 1, 0, 0, 1, 0, 1, 0}, 1: {2, 2, 1, 0, 0, 1, 0, 2}}

	c1 := newTestCoordinator(t, net, "agg", 0)
	if err := c1.Open(dir); err != nil {
		t.Fatal(err)
	}
	if n := metricValue(t, c1.Registry(), "durable_recoveries_total"); n != 0 {
		t.Fatalf("fresh state dir counted a recovery: %v", n)
	}
	runRound(t, c1, 0, r0)
	hashBefore := agg.StateHash()
	c1.Close()

	c2 := newTestCoordinator(t, net, "agg", 0)
	if err := c2.Open(dir); err != nil {
		t.Fatal(err)
	}
	if c2.Latest() != 0 {
		t.Errorf("recovered latest = %d, want 0", c2.Latest())
	}
	reg := c2.Registry()
	if n := metricValue(t, reg, "durable_recoveries_total"); n != 1 {
		t.Errorf("durable_recoveries_total = %v, want 1", n)
	}
	if n := metricValue(t, reg, "journal_replay_records_total"); n != 1 {
		t.Errorf("journal_replay_records_total = %v, want 1", n)
	}

	// A replayed census for round 0 is late to the recovered coordinator and
	// must be answered, not re-barriered.
	if _, err := c2.Submit(transport.Census{Edge: 0, Round: 0, Counts: r0[0]}); err != nil {
		t.Fatalf("late census after recovery: %v", err)
	}

	// Round 1 proceeds normally on the recovered watermark.
	r1 := map[int][]int{0: {6, 0, 1, 0, 0, 0, 1, 0}, 1: {4, 1, 0, 1, 0, 0, 0, 2}}
	runRound(t, c2, 1, r1)
	if c2.Latest() != 1 {
		t.Errorf("latest after recovery round = %d, want 1", c2.Latest())
	}
	// The recovery re-forward duplicates round 0 byte-for-byte, so it must
	// not have disturbed the aggregator's fold before round 1.
	if agg.StateHash() == hashBefore {
		t.Log("round 1 left the hash unchanged (fold converged); fine")
	}
	c2.Close()
}

// TestCoordinatorLeaseQuorum: once leases are in play, a round completes as
// soon as every live-leased region reports, and an evicted region's
// straggler is relayed late.
func TestCoordinatorLeaseQuorum(t *testing.T) {
	net := transport.NewInprocNetwork()
	agg := newAggregator(t)
	defer agg.Close()
	agg.SetFixedLag(8)
	agg.SetRoundDeadline(50 * time.Millisecond)
	startAggregator(t, net, "agg", agg)

	c := newTestCoordinator(t, net, "agg", 0)
	if err := c.RenewLease(0, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := c.RenewLease(1, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := c.RenewLease(7, time.Hour); err == nil {
		t.Error("lease outside the owned group must be rejected")
	}

	// Region 1's lease lapses; the round must complete on region 0 alone.
	x, err := c.Submit(transport.Census{Edge: 0, Round: 0, Counts: []int{5, 1, 0, 0, 1, 0, 1, 0}})
	if err != nil {
		t.Fatalf("leased quorum round: %v", err)
	}
	if x <= 0 || x > 1 {
		t.Errorf("ratio %v out of range", x)
	}
	reg := c.Registry()
	if n := metricValue(t, reg, "lease_evictions_total"); n != 1 {
		t.Errorf("lease_evictions_total = %v, want 1", n)
	}
	if n := metricValue(t, reg, "shard_degraded_rounds_total"); n != 1 {
		t.Errorf("shard_degraded_rounds_total = %v, want 1", n)
	}
}
