// Package shard partitions the consensus tier by region group: a rendezvous
// hash ring assigns every region to exactly one shard coordinator, the
// coordinator runs that group's round barrier and forwards one census batch
// per round to the aggregation tier (cloud.Server), and the aggregator runs
// the unchanged global FDS fold — so the published ratio field is
// bit-identical to a single-server deployment by construction. The global
// fold cannot itself be split (regions couple through the interaction graph
// Gamma), which is exactly why the shards own the barriers and batching
// while one thin tier owns the fold.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a rendezvous (highest-random-weight) hash ring over shard names.
// Every region hashes against every shard and the highest score owns it —
// no virtual nodes, exact minimal movement: when a shard joins it steals
// only the regions it now wins, and when one leaves only its own regions
// move. Deterministic across processes (FNV-64a, ties broken by name).
type Ring struct {
	shards []string
}

// NewRing builds a ring over the given shard names, which must be non-empty
// and unique. The slice is copied and sorted so score ties resolve the same
// way regardless of argument order.
func NewRing(shards []string) (*Ring, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: ring needs at least one shard")
	}
	seen := make(map[string]bool, len(shards))
	owned := make([]string, 0, len(shards))
	for _, s := range shards {
		if s == "" {
			return nil, fmt.Errorf("shard: empty shard name")
		}
		if seen[s] {
			return nil, fmt.Errorf("shard: duplicate shard name %q", s)
		}
		seen[s] = true
		owned = append(owned, s)
	}
	sort.Strings(owned)
	return &Ring{shards: owned}, nil
}

// Shards returns the ring's members in sorted order.
func (r *Ring) Shards() []string {
	out := make([]string, len(r.shards))
	copy(out, r.shards)
	return out
}

// Owner returns the shard owning region: the member with the highest
// rendezvous score for it.
func (r *Ring) Owner(region int) string {
	best, bestScore := r.shards[0], score(r.shards[0], region)
	for _, s := range r.shards[1:] {
		if sc := score(s, region); sc > bestScore {
			best, bestScore = s, sc
		}
	}
	return best
}

// score is the rendezvous weight of (shard, region): FNV-64a over
// "shard:region", pushed through a splitmix64-style finalizer. The
// finalizer matters: raw FNV of inputs differing only in their trailing
// region digits is strongly correlated, which lets one shard win whole
// contiguous region ranges; the extra avalanche rounds restore the
// independent-uniform scores rendezvous balance depends on. Sorted
// iteration in Owner makes the lowest name win exact score ties, so
// assignment is a pure function of the member set.
func score(shard string, region int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(shard))
	h.Write([]byte{':'})
	h.Write([]byte(strconv.Itoa(region)))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Names returns the conventional shard names for an n-coordinator
// deployment: "shard-0" … "shard-<n-1>". cpnode and loadgen both derive
// their rings from it, so a shard id is enough to agree on the assignment.
func Names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = "shard-" + strconv.Itoa(i)
	}
	return out
}
