package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/durable"
	"repro/internal/edge"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/session"
)

// defaultCompactEvery matches the cloud coordinator's compaction cadence.
const defaultCompactEvery = 32

// defaultMaxRoundSkew bounds how far ahead of the shard's completed
// watermark a census may run before Submit rejects it.
const defaultMaxRoundSkew = 1024

// Config describes one shard coordinator's slice of the consensus tier.
type Config struct {
	// ID is the shard's index into the ring's sorted member names.
	ID int
	// Regions is the region group this shard owns (from Table.Regions).
	Regions []int
	// K is the number of decisions per census (lattice size, validation).
	K int
	// Deadline bounds the shard's round barrier: a round whose owned
	// regions have not all reported within Deadline of the first census is
	// forwarded degraded. Zero waits for the full group.
	Deadline time.Duration
	// Upstream is the batch link to the aggregation tier (required). The
	// coordinator installs its own OnCorrection handler on it.
	Upstream *edge.BatchLink
	// Logf, when non-nil, receives progress and failure logs.
	Logf func(format string, args ...interface{})
}

// Coordinator is one shard of the consensus tier: it owns the round barrier
// for its region group, forwards each completed barrier upstream as a
// single CensusBatch, adopts the aggregator's RatioBatch answer, and only
// then releases the round's waiting edges — so every ratio an edge receives
// is the aggregator's global-fold value, bit-identical to a single-server
// deployment. The shard holds no fold state of its own: its durable journal
// exists to re-forward a batch the aggregator may never have seen when the
// shard crashes between barrier completion and the upstream exchange.
type Coordinator struct {
	cfg   Config
	owned map[int]bool

	mu         sync.Mutex
	eng        *cloud.Engine
	forwarding map[int]bool        // rounds mid-forward (barrier frozen)
	ratios     map[int]float64     // latest adopted ratio per owned region
	edgeSess   map[int]*session.Session
	obsv       *obs.Observer
	metrics    coordinatorMetrics
	conns      map[transport.Conn]struct{}
	closed     chan struct{}
	once       sync.Once
	wg         sync.WaitGroup

	// Durability (nil store = in-memory only; see Open).
	store        *durable.Store
	compactEvery int
	sinceCompact int
	lastRec      *durable.RoundRecord // newest journaled round, for re-forward

	// Membership leases over the owned group, mirroring the cloud's.
	leases  map[int]*leaseEntry
	leasing bool
}

type leaseEntry struct {
	expiry time.Time
	timer  *time.Timer
	live   bool
}

type coordinatorMetrics struct {
	rounds          *obs.Counter // shard_rounds_total
	degraded        *obs.Counter // shard_degraded_rounds_total
	abandoned       *obs.Counter // shard_abandoned_rounds_total
	late            *obs.Counter // shard_late_censuses_total
	duplicates      *obs.Counter // shard_duplicate_censuses_total
	decodeFailures  *obs.Counter // shard_decode_failures_total
	forwards        *obs.Counter // shard_forwards_total
	forwardFailures *obs.Counter // shard_forward_failures_total
	corrections     *obs.Counter // shard_ratio_corrections_total
	latestRound     *obs.Gauge   // shard_round_latest
	regionsOwned    *obs.Gauge   // shard_regions_owned
	roundDuration   *obs.Histogram // shard_round_duration_seconds
	recoveries      *obs.Counter // durable_recoveries_total
	replayRecords   *obs.Counter // journal_replay_records_total
	journalErrors   *obs.Counter // durable_journal_errors_total
	checkpointSize  *obs.Gauge   // checkpoint_bytes
	leaseRenewals   *obs.Counter // lease_renewals_total
	leaseEvictions  *obs.Counter // lease_evictions_total
	leasesLive      *obs.Gauge   // shard_leases_live
}

func newCoordinatorMetrics(o *obs.Observer) coordinatorMetrics {
	return coordinatorMetrics{
		rounds:          o.Counter("shard_rounds_total", "shard rounds forwarded upstream and answered"),
		degraded:        o.Counter("shard_degraded_rounds_total", "shard rounds forwarded by the deadline with owned regions missing"),
		abandoned:       o.Counter("shard_abandoned_rounds_total", "stale shard barriers evicted when a newer round completed first"),
		late:            o.Counter("shard_late_censuses_total", "censuses for already-forwarded rounds, relayed upstream individually"),
		duplicates:      o.Counter("shard_duplicate_censuses_total", "duplicate censuses absorbed by a pending shard barrier"),
		decodeFailures:  o.Counter("shard_decode_failures_total", "malformed frames dropped by shard connection handlers"),
		forwards:        o.Counter("shard_forwards_total", "census batches forwarded to the aggregation tier"),
		forwardFailures: o.Counter("shard_forward_failures_total", "upstream forwards that failed after the link's retries"),
		corrections:     o.Counter("shard_ratio_corrections_total", "ratio corrections relayed from the aggregator to owned edges"),
		latestRound:     o.Gauge("shard_round_latest", "highest round this shard has forwarded and adopted (-1 before the first)"),
		regionsOwned:    o.Gauge("shard_regions_owned", "regions assigned to this shard by the hash ring"),
		roundDuration:   o.Histogram("shard_round_duration_seconds", "first census to adopted aggregator reply", nil),
		recoveries:      o.Counter("durable_recoveries_total", "coordinator state recoveries from a state directory"),
		replayRecords:   o.Counter("journal_replay_records_total", "journal round records replayed during recovery"),
		journalErrors:   o.Counter("durable_journal_errors_total", "journal appends or checkpoints that failed (state kept in memory)"),
		checkpointSize:  o.Gauge("checkpoint_bytes", "size of the last checkpoint written or recovered"),
		leaseRenewals:   o.Counter("lease_renewals_total", "edge membership lease registrations and renewals"),
		leaseEvictions:  o.Counter("lease_evictions_total", "edges evicted from the shard quorum by lease expiry"),
		leasesLive:      o.Gauge("shard_leases_live", "owned edges currently holding a live membership lease"),
	}
}

// NewCoordinator builds a shard coordinator for its configured region
// group. It installs itself as the Upstream link's correction handler, so
// aggregator rewind corrections for owned regions fan out to the edges that
// report here.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Upstream == nil {
		return nil, fmt.Errorf("shard %d: coordinator needs an upstream batch link", cfg.ID)
	}
	if len(cfg.Regions) == 0 {
		return nil, fmt.Errorf("shard %d: coordinator owns no regions", cfg.ID)
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("shard %d: coordinator needs the lattice size K, got %d", cfg.ID, cfg.K)
	}
	o := obs.New()
	c := &Coordinator{
		cfg:          cfg,
		owned:        make(map[int]bool, len(cfg.Regions)),
		eng:          cloud.NewEngine(),
		forwarding:   make(map[int]bool),
		ratios:       make(map[int]float64, len(cfg.Regions)),
		edgeSess:     make(map[int]*session.Session),
		obsv:         o,
		metrics:      newCoordinatorMetrics(o),
		conns:        make(map[transport.Conn]struct{}),
		closed:       make(chan struct{}),
		compactEvery: defaultCompactEvery,
		leases:       make(map[int]*leaseEntry),
	}
	for _, r := range cfg.Regions {
		c.owned[r] = true
	}
	c.metrics.latestRound.Set(-1)
	c.metrics.regionsOwned.Set(float64(len(cfg.Regions)))
	cfg.Upstream.OnCorrection = c.routeCorrection
	return c, nil
}

// Instrument re-points the coordinator's metrics at the given observer.
// Call before Serve.
func (c *Coordinator) Instrument(o *obs.Observer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.obsv = o
	c.metrics = newCoordinatorMetrics(o)
	c.metrics.latestRound.Set(float64(c.eng.Latest()))
	c.metrics.regionsOwned.Set(float64(len(c.cfg.Regions)))
}

// Registry returns the registry behind the coordinator's metrics.
func (c *Coordinator) Registry() *obs.Registry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.obsv.Registry()
}

// Latest returns the highest round this shard has forwarded and adopted
// (-1 before the first).
func (c *Coordinator) Latest() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.eng.Latest()
}

// Regions returns the shard's owned region group.
func (c *Coordinator) Regions() []int {
	out := make([]int, len(c.cfg.Regions))
	copy(out, c.cfg.Regions)
	return out
}

// SetCompactEvery tunes how many journaled rounds trigger a snapshot
// compaction (default 32; 0 or negative disables compaction).
func (c *Coordinator) SetCompactEvery(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.compactEvery = n
}

func (c *Coordinator) logf(format string, args ...interface{}) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Serve accepts downstream connections (edge CloudLinks and batching load
// generators) until the listener closes. Run in a goroutine.
func (c *Coordinator) Serve(l transport.Listener) {
	transport.AcceptLoop(l, c.closed, func(conn transport.Conn) {
		c.mu.Lock()
		select {
		case <-c.closed:
			c.mu.Unlock()
			conn.Close()
			return
		default:
		}
		c.conns[conn] = struct{}{}
		c.wg.Add(1)
		c.mu.Unlock()
		go func() {
			defer c.wg.Done()
			c.handleConn(conn)
			c.mu.Lock()
			delete(c.conns, conn)
			c.mu.Unlock()
		}()
	})
}

// Close shuts the coordinator down: pending barriers fail, connections
// close, lease timers stop, and the durable store is released.
func (c *Coordinator) Close() {
	c.once.Do(func() {
		close(c.closed)
		c.mu.Lock()
		for _, a := range c.eng.FailAll(transport.ErrClosed) {
			a.Barrier.Span.End(obs.A("closed", true))
		}
		for _, e := range c.leases {
			if e.timer != nil {
				e.timer.Stop()
			}
		}
		for conn := range c.conns {
			conn.Close()
		}
		c.conns = make(map[transport.Conn]struct{})
		if c.store != nil {
			_ = c.store.Close()
		}
		c.mu.Unlock()
	})
	c.wg.Wait()
}

func (c *Coordinator) handleConn(conn transport.Conn) {
	sess := session.Wrap(conn)
	defer sess.Close()
	defer c.dropEdgeSess(sess)
	dropFrame := func(err error) error {
		c.mu.Lock()
		c.metrics.decodeFailures.Inc()
		c.mu.Unlock()
		c.logf("shard %d: dropping malformed frame: %v", c.cfg.ID, err)
		return nil
	}
	_ = sess.Serve(map[transport.Kind]session.Handler{
		transport.KindCensus: func(m transport.Message) error {
			var census transport.Census
			if err := transport.Decode(m, transport.KindCensus, &census); err != nil {
				return dropFrame(err)
			}
			c.registerEdgeSess(census.Edge, sess)
			x, err := c.Submit(census)
			switch {
			case err == nil:
			case errors.Is(err, cloud.ErrRoundAbandoned):
				c.mu.Lock()
				x = c.ratios[census.Edge]
				c.mu.Unlock()
			case errors.Is(err, transport.ErrClosed):
				return err
			default:
				_ = sess.Ack(err)
				return nil
			}
			return sess.Send(transport.KindRatio, transport.Ratio{Round: census.Round + 1, X: x})
		},
		transport.KindCensusBatch: func(m transport.Message) error {
			var batch transport.CensusBatch
			if err := transport.Decode(m, transport.KindCensusBatch, &batch); err != nil {
				return dropFrame(err)
			}
			for _, cs := range batch.Censuses {
				c.registerEdgeSess(cs.Edge, sess)
			}
			reply, err := c.SubmitBatch(batch)
			switch {
			case err == nil:
			case errors.Is(err, cloud.ErrRoundAbandoned):
				c.mu.Lock()
				reply = c.ratioBatchLocked(batch)
				c.mu.Unlock()
			case errors.Is(err, transport.ErrClosed):
				return err
			default:
				_ = sess.Ack(err)
				return nil
			}
			return sess.Send(transport.KindRatioBatch, reply)
		},
		transport.KindLease: func(m transport.Message) error {
			var lease transport.Lease
			if err := transport.Decode(m, transport.KindLease, &lease); err != nil {
				return dropFrame(err)
			}
			err := c.RenewLease(lease.Edge, time.Duration(lease.TTLMillis)*time.Millisecond)
			if errors.Is(err, transport.ErrClosed) {
				return err
			}
			return sess.Ack(err)
		},
	}, func(m transport.Message) error {
		return dropFrame(fmt.Errorf("unexpected %s frame on shard connection", m.Kind))
	})
}

// validate rejects a census outside the shard's group or lattice shape.
func (c *Coordinator) validate(census transport.Census) error {
	if !c.owned[census.Edge] {
		return fmt.Errorf("shard %d: census from region %d outside owned group", c.cfg.ID, census.Edge)
	}
	if len(census.Counts) != c.cfg.K {
		return fmt.Errorf("%w: edge %d sent %d counts, lattice has %d decisions",
			cloud.ErrBadCensus, census.Edge, len(census.Counts), c.cfg.K)
	}
	return nil
}

// forward is one completed barrier on its way upstream, built under the
// lock and executed outside it.
type forward struct {
	round    int
	rb       *cloud.Barrier
	degraded bool
	censuses []transport.Census
}

// Submit records one owned region's census and blocks until the round's
// batch has been forwarded upstream and the aggregator's answer adopted —
// then returns the region's next global-fold sharing ratio. A census for an
// already-forwarded round is relayed upstream as a single-census batch (the
// aggregator absorbs duplicates or rewinds its lag window) and answered
// from the aggregator's reply.
func (c *Coordinator) Submit(census transport.Census) (float64, error) {
	if err := c.validate(census); err != nil {
		return 0, err
	}
	c.mu.Lock()
	if census.Round <= c.eng.Latest() {
		c.metrics.late.Inc()
		c.mu.Unlock()
		reply, err := c.forwardLate(census)
		if err != nil {
			return 0, err
		}
		return c.ratioFor(reply, census.Edge)
	}
	if census.Round > c.eng.Latest()+defaultMaxRoundSkew {
		c.mu.Unlock()
		return 0, fmt.Errorf("%w: round %d is beyond latest %d + skew %d",
			cloud.ErrFutureRound, census.Round, c.eng.Latest(), defaultMaxRoundSkew)
	}
	rb, missed, fw := c.insertLocked(census)
	c.mu.Unlock()
	if fw != nil {
		c.finishForward(fw)
	}

	select {
	case <-rb.Done:
		if rb.Err != nil {
			return 0, rb.Err
		}
		if missed {
			// The census arrived while the round's batch was already in
			// flight: relay it upstream on its own so the global fold sees
			// it (rewinding if needed), and answer from that exchange.
			c.mu.Lock()
			c.metrics.late.Inc()
			c.mu.Unlock()
			reply, err := c.forwardLate(census)
			if err != nil {
				return 0, err
			}
			return c.ratioFor(reply, census.Edge)
		}
		c.mu.Lock()
		x := c.ratios[census.Edge]
		c.mu.Unlock()
		return x, nil
	case <-c.closed:
		return 0, transport.ErrClosed
	}
}

// SubmitBatch records several owned regions' censuses in one call (a load
// generator multiplexing a region group over one connection) and answers
// them all from the adopted aggregator reply.
func (c *Coordinator) SubmitBatch(batch transport.CensusBatch) (transport.RatioBatch, error) {
	if len(batch.Censuses) == 0 {
		return transport.RatioBatch{}, fmt.Errorf("shard %d: empty census batch", c.cfg.ID)
	}
	for _, cs := range batch.Censuses {
		if cs.Round != batch.Round {
			return transport.RatioBatch{}, fmt.Errorf("shard %d: batch for round %d carries a census for round %d (edge %d)",
				c.cfg.ID, batch.Round, cs.Round, cs.Edge)
		}
		if err := c.validate(cs); err != nil {
			return transport.RatioBatch{}, err
		}
	}
	c.mu.Lock()
	if batch.Round <= c.eng.Latest() {
		c.metrics.late.Add(int64(len(batch.Censuses)))
		c.mu.Unlock()
		reply, err := c.upstreamReport(batch.Round, batch.Censuses)
		if err != nil {
			return transport.RatioBatch{}, err
		}
		c.adoptReply(reply)
		return c.replyFor(reply, batch)
	}
	if batch.Round > c.eng.Latest()+defaultMaxRoundSkew {
		c.mu.Unlock()
		return transport.RatioBatch{}, fmt.Errorf("%w: round %d is beyond latest %d + skew %d",
			cloud.ErrFutureRound, batch.Round, c.eng.Latest(), defaultMaxRoundSkew)
	}
	var rb *cloud.Barrier
	var fw *forward
	missed := false
	for i, cs := range batch.Censuses {
		b, m, f := c.insertLocked(cs)
		if i == 0 {
			rb = b
		}
		missed = missed || m
		if f != nil {
			fw = f
		}
	}
	c.mu.Unlock()
	if fw != nil {
		c.finishForward(fw)
	}

	select {
	case <-rb.Done:
		if rb.Err != nil {
			return transport.RatioBatch{}, rb.Err
		}
		if missed {
			c.mu.Lock()
			c.metrics.late.Add(int64(len(batch.Censuses)))
			c.mu.Unlock()
			reply, err := c.upstreamReport(batch.Round, batch.Censuses)
			if err != nil {
				return transport.RatioBatch{}, err
			}
			c.adoptReply(reply)
			return c.replyFor(reply, batch)
		}
		c.mu.Lock()
		reply := c.ratioBatchLocked(batch)
		c.mu.Unlock()
		return reply, nil
	case <-c.closed:
		return transport.RatioBatch{}, transport.ErrClosed
	}
}

// insertLocked adds one validated census to its round's barrier, opening
// the barrier if needed, and begins the upstream forward when the quorum
// fills. missed reports that the round's batch was already in flight when
// the census arrived (the caller must relay it upstream itself after the
// barrier resolves). Called with c.mu held.
func (c *Coordinator) insertLocked(census transport.Census) (rb *cloud.Barrier, missed bool, fw *forward) {
	rb, ok := c.eng.Barrier(census.Round)
	if !ok {
		span := c.obsv.Span("shard_round", obs.A("shard", c.cfg.ID), obs.A("round", census.Round))
		rb = c.eng.Open(census.Round, span, c.cfg.Deadline, c.expireRound)
	}
	if c.forwarding[census.Round] {
		return rb, true, nil
	}
	rb.Span.Event("census", obs.A("edge", census.Edge))
	if rb.Add(census.Edge, census.Counts) {
		c.metrics.duplicates.Inc()
	}
	if c.quorumMetLocked(rb) {
		fw = c.beginCompleteLocked(census.Round, rb, rb.Size() < len(c.cfg.Regions))
	}
	return rb, false, fw
}

// expireRound forwards a still-pending round degraded when its deadline
// fires.
func (c *Coordinator) expireRound(round int) {
	c.mu.Lock()
	rb, ok := c.eng.Barrier(round)
	if !ok || c.forwarding[round] {
		c.mu.Unlock()
		return
	}
	select {
	case <-rb.Done:
		c.mu.Unlock()
		return
	default:
	}
	fw := c.beginCompleteLocked(round, rb, true)
	c.mu.Unlock()
	if fw != nil {
		c.finishForward(fw)
	}
}

// beginCompleteLocked freezes a filled (or expired) barrier, journals its
// batch — fsynced before the upstream ever sees it, so a crash between here
// and the forward can re-forward on recovery — and returns the forward for
// the caller to execute outside the lock. Called with c.mu held.
func (c *Coordinator) beginCompleteLocked(round int, rb *cloud.Barrier, degraded bool) *forward {
	c.forwarding[round] = true
	fw := &forward{round: round, rb: rb, degraded: degraded}
	edges := make([]int, 0, rb.Size())
	for e := range rb.Censuses {
		edges = append(edges, e)
	}
	sort.Ints(edges)
	for _, e := range edges {
		fw.censuses = append(fw.censuses, transport.Census{Edge: e, Round: round, Counts: rb.Censuses[e]})
	}
	c.persistRoundLocked(round, rb, degraded)
	return fw
}

// finishForward runs one frozen barrier's upstream exchange and resolves
// its waiters: on success the aggregator's ratios are adopted and the round
// completes; on failure the barrier fails without advancing the watermark,
// so redialing edges re-open the round and trigger a fresh forward.
func (c *Coordinator) finishForward(fw *forward) {
	c.mu.Lock()
	c.metrics.forwards.Inc()
	c.mu.Unlock()
	reply, err := c.cfg.Upstream.Report(fw.round, fw.censuses)
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.forwarding, fw.round)
	select {
	case <-fw.rb.Done:
		// The barrier resolved while the forward was in flight: a newer
		// round's forward finished first and evicted it, or the coordinator
		// shut down. Its waiters are gone; just adopt whatever the upstream
		// answered and keep the watermark monotonic.
		if err == nil {
			c.adoptReplyLocked(reply)
			if fw.round > c.eng.Latest() {
				c.eng.SetLatest(fw.round)
				c.metrics.latestRound.Set(float64(fw.round))
			}
		}
		return
	default:
	}
	if err != nil {
		c.metrics.forwardFailures.Inc()
		c.logf("shard %d: forwarding round %d failed: %v", c.cfg.ID, fw.round, err)
		c.eng.Fail(fw.round, fmt.Errorf("shard %d: forwarding round %d: %w", c.cfg.ID, fw.round, err))
		fw.rb.Span.End(obs.A("forward_failed", true))
		return
	}
	c.adoptReplyLocked(reply)
	abandoned := c.eng.Complete(fw.round, fw.rb, fw.degraded)
	c.metrics.rounds.Inc()
	c.metrics.latestRound.Set(float64(c.eng.Latest()))
	c.metrics.roundDuration.Observe(time.Since(fw.rb.Opened).Seconds())
	if fw.degraded {
		c.metrics.degraded.Inc()
		c.logf("shard %d: round %d forwarded degraded with %d/%d regions",
			c.cfg.ID, fw.round, fw.rb.Size(), len(c.cfg.Regions))
	}
	fw.rb.Span.End(obs.A("degraded", fw.degraded), obs.A("regions", fw.rb.Size()), obs.A("of", len(c.cfg.Regions)))
	for _, a := range abandoned {
		c.metrics.abandoned.Inc()
		a.Barrier.Span.End(obs.A("abandoned", true), obs.A("superseded_by", fw.round))
	}
}

// forwardLate relays one census for an already-forwarded round upstream as
// a single-census batch and adopts the reply.
func (c *Coordinator) forwardLate(census transport.Census) (transport.RatioBatch, error) {
	reply, err := c.upstreamReport(census.Round, []transport.Census{census})
	if err != nil {
		return transport.RatioBatch{}, err
	}
	c.adoptReply(reply)
	return reply, nil
}

// upstreamReport is one upstream batch exchange with the forward counters
// maintained.
func (c *Coordinator) upstreamReport(round int, censuses []transport.Census) (transport.RatioBatch, error) {
	c.mu.Lock()
	c.metrics.forwards.Inc()
	c.mu.Unlock()
	reply, err := c.cfg.Upstream.Report(round, censuses)
	if err != nil {
		c.mu.Lock()
		c.metrics.forwardFailures.Inc()
		c.mu.Unlock()
		return transport.RatioBatch{}, err
	}
	return reply, nil
}

func (c *Coordinator) adoptReply(reply transport.RatioBatch) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.adoptReplyLocked(reply)
}

// adoptReplyLocked caches the aggregator's answered ratios for the owned
// regions. Called with c.mu held.
func (c *Coordinator) adoptReplyLocked(reply transport.RatioBatch) {
	for i, e := range reply.Edges {
		if c.owned[e] && i < len(reply.X) {
			c.ratios[e] = reply.X[i]
		}
	}
}

// ratioFor extracts one edge's ratio from an upstream reply.
func (c *Coordinator) ratioFor(reply transport.RatioBatch, edge int) (float64, error) {
	for i, e := range reply.Edges {
		if e == edge && i < len(reply.X) {
			return reply.X[i], nil
		}
	}
	return 0, fmt.Errorf("shard %d: upstream reply missing edge %d", c.cfg.ID, edge)
}

// replyFor re-shapes an upstream reply onto the downstream batch's edges.
func (c *Coordinator) replyFor(reply transport.RatioBatch, batch transport.CensusBatch) (transport.RatioBatch, error) {
	out := transport.RatioBatch{
		Round: batch.Round + 1,
		Edges: make([]int, len(batch.Censuses)),
		X:     make([]float64, len(batch.Censuses)),
	}
	for i, cs := range batch.Censuses {
		x, err := c.ratioFor(reply, cs.Edge)
		if err != nil {
			return transport.RatioBatch{}, err
		}
		out.Edges[i] = cs.Edge
		out.X[i] = x
	}
	return out, nil
}

// ratioBatchLocked answers batch from the cached adopted ratios. Called
// with c.mu held.
func (c *Coordinator) ratioBatchLocked(batch transport.CensusBatch) transport.RatioBatch {
	reply := transport.RatioBatch{
		Round: batch.Round + 1,
		Edges: make([]int, len(batch.Censuses)),
		X:     make([]float64, len(batch.Censuses)),
	}
	for i, cs := range batch.Censuses {
		reply.Edges[i] = cs.Edge
		reply.X[i] = c.ratios[cs.Edge]
	}
	return reply
}

// routeCorrection relays an aggregator rewind correction to the owned
// edge's session, preserving the aggregator-assigned sequence, and adopts
// the corrected ratio into the shard's cache.
func (c *Coordinator) routeCorrection(rc transport.RatioCorrection) {
	if !c.owned[rc.Edge] {
		return
	}
	c.mu.Lock()
	c.ratios[rc.Edge] = rc.X
	c.metrics.corrections.Inc()
	sess := c.edgeSess[rc.Edge]
	c.mu.Unlock()
	if sess != nil {
		go func() { _ = sess.Send(transport.KindRatioCorrection, rc) }()
	}
}

// registerEdgeSess remembers the session an edge reports on, the channel
// relayed corrections go back out.
func (c *Coordinator) registerEdgeSess(edge int, sess *session.Session) {
	if !c.owned[edge] {
		return
	}
	c.mu.Lock()
	c.edgeSess[edge] = sess
	c.mu.Unlock()
}

// dropEdgeSess forgets every edge registration pointing at sess.
func (c *Coordinator) dropEdgeSess(sess *session.Session) {
	c.mu.Lock()
	for edge, es := range c.edgeSess {
		if es == sess {
			delete(c.edgeSess, edge)
		}
	}
	c.mu.Unlock()
}

// RenewLease registers or renews an owned edge's membership lease,
// mirroring the cloud coordinator's quorum semantics within the shard's
// region group.
func (c *Coordinator) RenewLease(edgeID int, ttl time.Duration) error {
	if !c.owned[edgeID] {
		return fmt.Errorf("shard %d: lease from region %d outside owned group", c.cfg.ID, edgeID)
	}
	if ttl <= 0 {
		return fmt.Errorf("shard %d: lease TTL %v must be positive", c.cfg.ID, ttl)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case <-c.closed:
		return transport.ErrClosed
	default:
	}
	c.leasing = true
	e := c.leases[edgeID]
	if e == nil {
		e = &leaseEntry{live: true}
		c.leases[edgeID] = e
		id := edgeID
		e.timer = time.AfterFunc(ttl, func() { c.expireLease(id) })
	} else {
		if !e.live {
			c.logf("shard %d: edge %d re-admitted to quorum", c.cfg.ID, edgeID)
		}
		e.live = true
		e.timer.Reset(ttl)
	}
	e.expiry = time.Now().Add(ttl)
	c.metrics.leaseRenewals.Inc()
	c.metrics.leasesLive.Set(float64(c.liveLeasesLocked()))
	return nil
}

// expireLease evicts an edge whose lease lapsed and re-checks pending
// barriers against the shrunken quorum.
func (c *Coordinator) expireLease(edgeID int) {
	c.mu.Lock()
	select {
	case <-c.closed:
		c.mu.Unlock()
		return
	default:
	}
	e := c.leases[edgeID]
	if e == nil || !e.live {
		c.mu.Unlock()
		return
	}
	if remaining := time.Until(e.expiry); remaining > 0 {
		e.timer.Reset(remaining)
		c.mu.Unlock()
		return
	}
	e.live = false
	c.metrics.leaseEvictions.Inc()
	c.metrics.leasesLive.Set(float64(c.liveLeasesLocked()))
	c.logf("shard %d: lease of edge %d expired, evicting from quorum", c.cfg.ID, edgeID)
	var fw *forward
	if best, rb := c.eng.Best(func(round int, b *cloud.Barrier) bool {
		return !c.forwarding[round] && c.quorumMetLocked(b)
	}); best >= 0 {
		fw = c.beginCompleteLocked(best, rb, rb.Size() < len(c.cfg.Regions))
	}
	c.mu.Unlock()
	if fw != nil {
		c.finishForward(fw)
	}
}

func (c *Coordinator) liveLeasesLocked() int {
	n := 0
	for _, e := range c.leases {
		if e.live {
			n++
		}
	}
	return n
}

// quorumMetLocked mirrors the cloud's barrier quorum within the owned
// group: every owned region reported, or — once leases are in use — every
// owned edge holding a live lease reported. Called with c.mu held.
func (c *Coordinator) quorumMetLocked(rb *cloud.Barrier) bool {
	if rb.Size() >= len(c.cfg.Regions) {
		return true
	}
	if !c.leasing || rb.Size() == 0 {
		return false
	}
	for id, e := range c.leases {
		if !e.live {
			continue
		}
		if _, ok := rb.Censuses[id]; !ok {
			return false
		}
	}
	return true
}

// shardCheckpoint is the shard's tiny durable snapshot: the forwarded-round
// watermark. The shard holds no fold state — the aggregator owns that — so
// this is all recovery needs beyond the retained round records.
type shardCheckpoint struct {
	Round int `json:"round"`
}

// Open attaches a per-shard durable state directory and recovers the
// forwarded-round watermark a previous process left there. The newest
// journaled batch is re-forwarded upstream in the background: the crash may
// have preceded the upstream exchange, and the aggregator absorbs the
// duplicate (or rewinds) if it had already seen it. Call after Instrument
// and before Serve.
func (c *Coordinator) Open(stateDir string) error {
	store, err := durable.Open(stateDir)
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.store != nil {
		c.mu.Unlock()
		store.Close()
		return fmt.Errorf("shard %d: state directory already open (%s)", c.cfg.ID, c.store.Dir())
	}
	recovered := false
	latest := -1
	snap, ok, err := store.LoadSnapshot()
	if err != nil {
		c.mu.Unlock()
		store.Close()
		return err
	}
	if ok {
		var cp shardCheckpoint
		if err := json.Unmarshal(snap, &cp); err != nil {
			c.mu.Unlock()
			store.Close()
			return fmt.Errorf("shard %d: checkpoint in %s: %w", c.cfg.ID, stateDir, err)
		}
		latest = cp.Round
		c.metrics.checkpointSize.Set(float64(len(snap)))
		recovered = true
	}
	replayed := 0
	var lastRec *durable.RoundRecord
	_, err = store.Replay(func(payload []byte) error {
		rec, err := durable.DecodeRound(payload)
		if err != nil {
			return err
		}
		if lastRec == nil || rec.Round >= lastRec.Round {
			r := rec
			lastRec = &r
		}
		if rec.Round > latest {
			latest = rec.Round
			replayed++
		}
		return nil
	})
	if err != nil {
		c.mu.Unlock()
		store.Close()
		return fmt.Errorf("shard %d: journal in %s: %w", c.cfg.ID, stateDir, err)
	}
	if replayed > 0 {
		c.metrics.replayRecords.Add(int64(replayed))
		recovered = true
	}
	c.eng.SetLatest(latest)
	c.lastRec = lastRec
	c.store = store
	c.sinceCompact = replayed
	if recovered {
		c.metrics.recoveries.Inc()
		c.metrics.latestRound.Set(float64(latest))
		c.logf("shard %d: recovered watermark round %d from %s (%d journal records replayed)",
			c.cfg.ID, latest, stateDir, replayed)
	}
	c.mu.Unlock()
	if lastRec != nil {
		// Re-forward the newest batch off the serve path: the crash may have
		// raced the upstream exchange. Idempotent upstream (duplicate absorb
		// / lag-window rewind), so re-forwarding an acknowledged batch is
		// harmless.
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			censuses := make([]transport.Census, 0, len(lastRec.Censuses))
			edges := make([]int, 0, len(lastRec.Censuses))
			for e := range lastRec.Censuses {
				edges = append(edges, e)
			}
			sort.Ints(edges)
			for _, e := range edges {
				censuses = append(censuses, transport.Census{Edge: e, Round: lastRec.Round, Counts: lastRec.Censuses[e]})
			}
			reply, err := c.upstreamReport(lastRec.Round, censuses)
			if err != nil {
				c.logf("shard %d: re-forwarding recovered round %d failed: %v", c.cfg.ID, lastRec.Round, err)
				return
			}
			c.adoptReply(reply)
			c.logf("shard %d: re-forwarded recovered round %d (%d regions)", c.cfg.ID, lastRec.Round, len(censuses))
		}()
	}
	return nil
}

// persistRoundLocked journals one frozen barrier's batch, fsynced before
// the upstream forward, and compacts every compactEvery rounds. Failures
// are counted and logged but do not fail the round. Called with c.mu held;
// no-op without an open store.
func (c *Coordinator) persistRoundLocked(round int, rb *cloud.Barrier, degraded bool) {
	if c.store == nil {
		return
	}
	rec := durable.RoundRecord{Round: round, Degraded: degraded, Censuses: rb.Censuses}
	payload, err := durable.EncodeRound(rec)
	if err == nil {
		err = c.store.Append(payload)
	}
	if err != nil {
		c.metrics.journalErrors.Inc()
		c.logf("shard %d: journaling round %d: %v", c.cfg.ID, round, err)
		return
	}
	c.lastRec = &rec
	c.sinceCompact++
	if c.compactEvery > 0 && c.sinceCompact >= c.compactEvery {
		if err := c.checkpointLocked(); err != nil {
			c.metrics.journalErrors.Inc()
			c.logf("shard %d: compacting after round %d: %v", c.cfg.ID, round, err)
		}
	}
}

// checkpointLocked folds the journal into a watermark checkpoint, retaining
// the newest round record so recovery can always re-forward the last batch.
// Called with c.mu held.
func (c *Coordinator) checkpointLocked() error {
	cp, err := json.Marshal(shardCheckpoint{Round: c.eng.Latest()})
	if err != nil {
		return err
	}
	var retained [][]byte
	if c.lastRec != nil {
		rec, err := durable.EncodeRound(*c.lastRec)
		if err != nil {
			return err
		}
		retained = append(retained, rec)
	}
	var n int
	if retained == nil {
		n, err = c.store.Compact(cp)
	} else {
		n, err = c.store.CompactRetain(cp, retained)
	}
	if err != nil {
		return err
	}
	c.metrics.checkpointSize.Set(float64(n))
	c.sinceCompact = 0
	return nil
}

// Drain shuts the shard down gracefully: the most advanced pending barrier
// forwards degraded with whatever censuses it holds, a final checkpoint is
// written, and the coordinator closes.
func (c *Coordinator) Drain() error {
	c.mu.Lock()
	var fw *forward
	if best, rb := c.eng.Best(func(round int, b *cloud.Barrier) bool { return !c.forwarding[round] }); best >= 0 {
		c.logf("shard %d: draining: forwarding round %d with %d/%d regions",
			c.cfg.ID, best, rb.Size(), len(c.cfg.Regions))
		fw = c.beginCompleteLocked(best, rb, rb.Size() < len(c.cfg.Regions))
	}
	c.mu.Unlock()
	if fw != nil {
		c.finishForward(fw)
	}
	var err error
	c.mu.Lock()
	if c.store != nil {
		err = c.checkpointLocked()
	}
	c.mu.Unlock()
	c.Close()
	return err
}
