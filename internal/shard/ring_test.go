package shard

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", ""}); err == nil {
		t.Error("empty shard name accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}); err == nil {
		t.Error("duplicate shard name accepted")
	}
}

// TestRingDeterministic: ownership is a pure function of the member set,
// independent of the order the members were listed in.
func TestRingDeterministic(t *testing.T) {
	a, err := NewRing([]string{"shard-0", "shard-1", "shard-2", "shard-3"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"shard-3", "shard-1", "shard-0", "shard-2"})
	if err != nil {
		t.Fatal(err)
	}
	for region := 0; region < 256; region++ {
		if a.Owner(region) != b.Owner(region) {
			t.Fatalf("region %d: owner %q vs %q under reordered members", region, a.Owner(region), b.Owner(region))
		}
	}
}

// TestRingBalance: under random member sets the heaviest shard carries at
// most twice the lightest's regions — the load-spread property the sharded
// tier's capacity planning rests on.
func TestRingBalance(t *testing.T) {
	const m = 1024
	rng := rand.New(rand.NewSource(7))
	memberSets := [][]string{Names(2), Names(4), Names(8)}
	for i := 0; i < 8; i++ {
		n := 2 + rng.Intn(7)
		names := make([]string, n)
		for j := range names {
			names[j] = randomName(rng)
		}
		memberSets = append(memberSets, names)
	}
	for _, names := range memberSets {
		r, err := NewRing(names)
		if err != nil {
			// Random names may collide; skip that draw.
			continue
		}
		table, err := BuildTable(r, m)
		if err != nil {
			t.Fatal(err)
		}
		loads := table.Loads()
		min, max := loads[0], loads[0]
		for _, l := range loads[1:] {
			if l < min {
				min = l
			}
			if l > max {
				max = l
			}
		}
		if min == 0 || float64(max)/float64(min) > 2 {
			t.Errorf("shards %v: loads %v, max/min ratio above 2", names, loads)
		}
	}
}

func randomName(rng *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	b := make([]byte, 6)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}

// TestRingStability: rendezvous hashing moves only the regions it must.
// When a shard leaves, exactly its regions are re-homed; when one joins,
// regions move only *to* the newcomer, and roughly 1/(n+1) of them.
func TestRingStability(t *testing.T) {
	const m = 1024
	base, err := NewRing(Names(4))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("leave", func(t *testing.T) {
		smaller, err := NewRing([]string{"shard-0", "shard-1", "shard-3"})
		if err != nil {
			t.Fatal(err)
		}
		for region := 0; region < m; region++ {
			before := base.Owner(region)
			after := smaller.Owner(region)
			if before != "shard-2" && after != before {
				t.Fatalf("region %d moved %q -> %q though its owner never left", region, before, after)
			}
		}
	})

	t.Run("join", func(t *testing.T) {
		larger, err := NewRing(append(Names(4), "shard-4"))
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for region := 0; region < m; region++ {
			before := base.Owner(region)
			after := larger.Owner(region)
			if after == before {
				continue
			}
			if after != "shard-4" {
				t.Fatalf("region %d moved %q -> %q instead of to the joining shard", region, before, after)
			}
			moved++
		}
		// Expected m/5; allow headroom but catch wholesale reshuffles
		// (consistent-hashing's ~m/2 would fail this immediately).
		if moved > 2*m/5 {
			t.Errorf("%d of %d regions moved on join, want about %d", moved, m, m/5)
		}
		if moved == 0 {
			t.Error("no region moved to the joining shard")
		}
	})
}

// TestGoldenAssignment pins the 16-region / 4-shard assignment table — the
// topology the sharded quickstart and the equivalence tests run — so any
// change to the hash or tie-break is a deliberate, reviewed diff.
func TestGoldenAssignment(t *testing.T) {
	r, err := NewRing(Names(4))
	if err != nil {
		t.Fatal(err)
	}
	table, err := BuildTable(r, 16)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(table, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "assignment_16x4.golden.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading %s (regenerate by writing the got bytes): %v\ngot:\n%s", golden, err, got)
	}
	if string(got) != string(want) {
		t.Errorf("assignment table drifted from %s:\ngot:\n%s\nwant:\n%s", golden, got, want)
	}

	// Every region has exactly one owner and the groups partition 0..15.
	seen := make(map[int]bool)
	for i := range table.Shards {
		for _, region := range table.Regions(i) {
			if seen[region] {
				t.Errorf("region %d owned by more than one shard", region)
			}
			seen[region] = true
		}
	}
	if len(seen) != 16 {
		t.Errorf("%d regions assigned, want 16", len(seen))
	}
}
