package cluster

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

// GridPartition is the naive baseline Algorithm 1 is compared against: it
// ignores utility coefficients entirely and splits the segments into a
// rows x cols geographic grid of regions (merging empty cells into their
// nearest non-empty neighbour so the assignment stays total and non-empty).
// The paper motivates Algorithm 1 by the approximation error of replacing
// every segment's coefficient with its region's constant; this baseline
// quantifies how much of that error coefficient-aware growth removes.
func GridPartition(net *roadnet.Network, box geo.BBox, m int) (*Assignment, error) {
	n := net.NumSegments()
	if n == 0 {
		return nil, fmt.Errorf("cluster: empty network")
	}
	if m < 1 || m > n {
		return nil, fmt.Errorf("cluster: m = %d out of range [1,%d]", m, n)
	}
	if !box.Valid() {
		return nil, fmt.Errorf("cluster: invalid bounding box")
	}

	rows := 1
	for rows*rows < m {
		rows++
	}
	cols := (m + rows - 1) / rows

	// First pass: raw cell assignment.
	cellOf := func(p geo.Point) int {
		r := int(float64(rows) * (p.Lat - box.MinLat) / (box.MaxLat - box.MinLat))
		c := int(float64(cols) * (p.Lon - box.MinLon) / (box.MaxLon - box.MinLon))
		if r < 0 {
			r = 0
		}
		if r >= rows {
			r = rows - 1
		}
		if c < 0 {
			c = 0
		}
		if c >= cols {
			c = cols - 1
		}
		return r*cols + c
	}
	mid := net.Midpoints()
	raw := make([]int, n)
	counts := make(map[int]int)
	for s, p := range mid {
		raw[s] = cellOf(p)
		counts[raw[s]]++
	}

	// Keep the m most populated cells as regions; everything else attaches
	// to the nearest kept cell's centroid.
	type cellPop struct{ cell, pop int }
	pops := make([]cellPop, 0, len(counts))
	for cell, pop := range counts {
		pops = append(pops, cellPop{cell, pop})
	}
	// Selection by population, stable on cell id for determinism.
	for i := 0; i < len(pops); i++ {
		for j := i + 1; j < len(pops); j++ {
			if pops[j].pop > pops[i].pop || (pops[j].pop == pops[i].pop && pops[j].cell < pops[i].cell) {
				pops[i], pops[j] = pops[j], pops[i]
			}
		}
	}
	if len(pops) < m {
		m = len(pops)
	}
	regionOfCell := make(map[int]int, m)
	centroids := make([]geo.Point, m)
	centroidN := make([]int, m)
	for i := 0; i < m; i++ {
		regionOfCell[pops[i].cell] = i
	}
	assigned := make([]int, n)
	for s := range assigned {
		assigned[s] = -1
	}
	for s, cell := range raw {
		if r, ok := regionOfCell[cell]; ok {
			assigned[s] = r
			centroids[r] = geo.Point{
				Lat: centroids[r].Lat + mid[s].Lat,
				Lon: centroids[r].Lon + mid[s].Lon,
			}
			centroidN[r]++
		}
	}
	for r := range centroids {
		if centroidN[r] > 0 {
			centroids[r].Lat /= float64(centroidN[r])
			centroids[r].Lon /= float64(centroidN[r])
		}
	}
	seeds := make([]roadnet.SegmentID, m)
	seedDist := make([]float64, m)
	for r := range seedDist {
		seedDist[r] = math.Inf(1)
	}
	for s := range assigned {
		if assigned[s] < 0 {
			best, bestD := 0, math.Inf(1)
			for r, c := range centroids {
				if d := geo.Equirectangular(mid[s], c); d < bestD {
					bestD, best = d, r
				}
			}
			assigned[s] = best
		}
		r := assigned[s]
		if d := geo.Equirectangular(mid[s], centroids[r]); d < seedDist[r] {
			seedDist[r] = d
			seeds[r] = roadnet.SegmentID(s)
		}
	}

	a := &Assignment{Region: assigned, M: m, Seeds: seeds}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: grid partition: %w", err)
	}
	return a, nil
}
