package cluster

import (
	"fmt"

	"repro/internal/roadnet"
	"repro/internal/trace"
)

// RegionGraph is the paper's auxiliary graph G = (R, E): nodes are regions,
// an edge e_{i,j} exists when vehicles in regions i and j can share data,
// and the weight gamma_{i,j} reflects the data-sharing frequency between
// them. gamma_{i,i} is the intra-region frequency.
//
// Gamma values are normalized so that, for each region i,
// gamma_{i,i} + sum_j gamma_{j,i} = 1: they partition the sources of data
// a vehicle in region i can hear from.
type RegionGraph struct {
	m     int
	gamma [][]float64 // gamma[i][j]; symmetric by construction
	adj   [][]int     // adj[i] = neighbor regions with gamma > 0, j != i
}

// M returns the number of regions.
func (g *RegionGraph) M() int { return g.m }

// Gamma returns gamma_{i,j} (or gamma_{i,i} for i == j).
func (g *RegionGraph) Gamma(i, j int) float64 {
	if i < 0 || i >= g.m || j < 0 || j >= g.m {
		return 0
	}
	return g.gamma[i][j]
}

// Neighbors returns the regions adjacent to i (excluding i itself). The
// returned slice must not be modified.
func (g *RegionGraph) Neighbors(i int) []int {
	if i < 0 || i >= g.m {
		return nil
	}
	return g.adj[i]
}

// NumEdges returns the number of undirected inter-region edges.
func (g *RegionGraph) NumEdges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// BuildRegionGraphFromTrace derives the region graph from map-matched
// vehicle traces: each consecutive-fix transition between segments
// contributes to gamma between the segments' regions (a transition within a
// region feeds gamma_{i,i}). The counts are symmetrized and normalized per
// region. Falls back to geometric adjacency for region pairs with no
// observed transitions only in the sense that such pairs simply get no edge.
func BuildRegionGraphFromTrace(a *Assignment, ts *trace.Set) (*RegionGraph, error) {
	counts := make([][]float64, a.M)
	for i := range counts {
		counts[i] = make([]float64, a.M)
	}
	trans := trace.TransitionCounts(ts)
	if len(trans) == 0 {
		return nil, fmt.Errorf("cluster: trace has no segment transitions (is it map-matched?)")
	}
	for pair, c := range trans {
		s0, s1 := pair[0], pair[1]
		if s0 < 0 || s0 >= len(a.Region) || s1 < 0 || s1 >= len(a.Region) {
			continue
		}
		r0, r1 := a.Region[s0], a.Region[s1]
		counts[r0][r1] += float64(c)
		if r0 != r1 {
			counts[r1][r0] += float64(c)
		}
	}
	return newRegionGraph(a.M, counts)
}

// BuildRegionGraphFromAdjacency derives the region graph purely from the
// road network: gamma counts the number of segment adjacencies within and
// across regions. Used when no trace is available.
func BuildRegionGraphFromAdjacency(a *Assignment, net *roadnet.Network) (*RegionGraph, error) {
	if net.NumSegments() != len(a.Region) {
		return nil, fmt.Errorf("cluster: network has %d segments, assignment %d", net.NumSegments(), len(a.Region))
	}
	counts := make([][]float64, a.M)
	for i := range counts {
		counts[i] = make([]float64, a.M)
	}
	for s := 0; s < net.NumSegments(); s++ {
		for _, v := range net.Neighbors(roadnet.SegmentID(s)) {
			if int(v) <= s {
				continue // count each undirected adjacency once
			}
			r0, r1 := a.Region[s], a.Region[v]
			counts[r0][r1]++
			if r0 != r1 {
				counts[r1][r0]++
			}
		}
	}
	return newRegionGraph(a.M, counts)
}

func newRegionGraph(m int, counts [][]float64) (*RegionGraph, error) {
	g := &RegionGraph{
		m:     m,
		gamma: make([][]float64, m),
		adj:   make([][]int, m),
	}
	for i := 0; i < m; i++ {
		row := make([]float64, m)
		total := 0.0
		for j := 0; j < m; j++ {
			total += counts[i][j]
		}
		if total == 0 {
			// A region with no observed interaction at all talks only to
			// itself.
			row[i] = 1
		} else {
			for j := 0; j < m; j++ {
				row[j] = counts[i][j] / total
			}
		}
		g.gamma[i] = row
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i != j && g.gamma[i][j] > 0 {
				g.adj[i] = append(g.adj[i], j)
			}
		}
	}
	return g, nil
}

// Validate checks the per-region normalization invariant.
func (g *RegionGraph) Validate() error {
	for i := 0; i < g.m; i++ {
		total := 0.0
		for j := 0; j < g.m; j++ {
			if g.gamma[i][j] < 0 {
				return fmt.Errorf("cluster: gamma[%d][%d] negative", i, j)
			}
			total += g.gamma[i][j]
		}
		if total < 0.999 || total > 1.001 {
			return fmt.Errorf("cluster: gamma row %d sums to %f, want 1", i, total)
		}
	}
	return nil
}
