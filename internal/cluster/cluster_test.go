package cluster

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

func testNetwork(t *testing.T) *roadnet.Network {
	t.Helper()
	cfg := roadnet.DefaultGenConfig()
	cfg.Rows, cfg.Cols = 10, 12
	net, err := roadnet.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestClusterPartitionsAllSegments(t *testing.T) {
	net := testNetwork(t)
	bc := net.TravelTimeBetweenness()
	a, err := Cluster(net, bc, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a.M != 6 {
		t.Fatalf("M = %d, want 6", a.M)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range a.Sizes() {
		if n == 0 {
			t.Error("empty region")
		}
		total += n
	}
	if total != net.NumSegments() {
		t.Errorf("sizes sum to %d, want %d", total, net.NumSegments())
	}
	for i := 0; i < a.M; i++ {
		if len(a.Members(i)) != a.Sizes()[i] {
			t.Errorf("Members(%d) inconsistent with Sizes", i)
		}
	}
}

// TestClusterReducesVariance: clustering by coefficient must produce
// regions whose average within-region std is below the global std.
func TestClusterReducesVariance(t *testing.T) {
	net := testNetwork(t)
	bc := net.TravelTimeBetweenness()
	a, err := Cluster(net, bc, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, avgStd, err := Stats(a, bc)
	if err != nil {
		t.Fatal(err)
	}
	// Global std.
	mean := 0.0
	for _, w := range bc {
		mean += w
	}
	mean /= float64(len(bc))
	variance := 0.0
	for _, w := range bc {
		variance += (w - mean) * (w - mean)
	}
	globalStd := math.Sqrt(variance / float64(len(bc)))
	if avgStd >= globalStd {
		t.Errorf("avg within-region std %.6f should be below global std %.6f", avgStd, globalStd)
	}
}

func TestClusterSingleRegion(t *testing.T) {
	net := testNetwork(t)
	w := make([]float64, net.NumSegments())
	a, err := Cluster(net, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	for s, r := range a.Region {
		if r != 0 {
			t.Fatalf("segment %d in region %d, want 0", s, r)
		}
	}
}

func TestClusterValidation(t *testing.T) {
	net := testNetwork(t)
	w := make([]float64, net.NumSegments())
	if _, err := Cluster(net, w, 0); err == nil {
		t.Error("m=0 must error")
	}
	if _, err := Cluster(net, w, net.NumSegments()+1); err == nil {
		t.Error("m > n must error")
	}
	if _, err := Cluster(net, w[:3], 2); err == nil {
		t.Error("short weights must error")
	}
	w[0] = math.NaN()
	if _, err := Cluster(net, w, 2); err == nil {
		t.Error("NaN weight must error")
	}
	if _, err := Cluster(&roadnet.Network{}, nil, 1); err == nil {
		t.Error("empty network must error")
	}
}

func TestStats(t *testing.T) {
	net := testNetwork(t)
	td := make([]float64, net.NumSegments())
	for i := range td {
		td[i] = float64(i % 10)
	}
	a, err := Cluster(net, td, 4)
	if err != nil {
		t.Fatal(err)
	}
	stats, avgStd, err := Stats(a, td)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 4 {
		t.Fatalf("got %d stats, want 4", len(stats))
	}
	for _, st := range stats {
		if st.Size == 0 {
			t.Error("empty region in stats")
		}
		if st.P025 > st.Mean || st.Mean > st.P975 {
			t.Errorf("region %d: P025 %.3f <= mean %.3f <= P975 %.3f violated",
				st.Region, st.P025, st.Mean, st.P975)
		}
		if st.Std < 0 {
			t.Error("negative std")
		}
	}
	if avgStd < 0 {
		t.Error("negative average std")
	}
	if _, _, err := Stats(a, td[:5]); err == nil {
		t.Error("short weights must error")
	}
}

func TestRegionCoefficients(t *testing.T) {
	net := testNetwork(t)
	w := make([]float64, net.NumSegments())
	for i := range w {
		w[i] = 5.0
	}
	a, err := Cluster(net, w, 3)
	if err != nil {
		t.Fatal(err)
	}
	beta, err := RegionCoefficients(a, w)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range beta {
		if math.Abs(b-5.0) > 1e-12 {
			t.Errorf("beta[%d] = %f, want 5.0 for constant weights", i, b)
		}
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if q := quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %f", q)
	}
	if q := quantile(xs, 1); q != 5 {
		t.Errorf("q1 = %f", q)
	}
	if q := quantile(xs, 0.5); q != 3 {
		t.Errorf("q0.5 = %f", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %f", q)
	}
	if q := quantile([]float64{7}, 0.9); q != 7 {
		t.Errorf("singleton quantile = %f", q)
	}
}

func TestRegionGraphFromAdjacency(t *testing.T) {
	net := testNetwork(t)
	bc := net.TravelTimeBetweenness()
	a, err := Cluster(net, bc, 5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildRegionGraphFromAdjacency(a, net)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 5 {
		t.Fatalf("M = %d, want 5", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// A partition of a connected network into >1 regions must have edges.
	if g.NumEdges() == 0 {
		t.Error("region graph of connected network has no inter-region edges")
	}
	// Symmetric adjacency.
	for i := 0; i < g.M(); i++ {
		for _, j := range g.Neighbors(i) {
			found := false
			for _, back := range g.Neighbors(j) {
				if back == i {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("adjacency not symmetric: %d->%d", i, j)
			}
		}
	}
	if g.Gamma(-1, 0) != 0 || g.Gamma(0, 99) != 0 {
		t.Error("out-of-range Gamma should be 0")
	}
	if g.Neighbors(-1) != nil {
		t.Error("out-of-range Neighbors should be nil")
	}
}

func TestRegionGraphFromTrace(t *testing.T) {
	net := testNetwork(t)
	bc := net.TravelTimeBetweenness()
	a, err := Cluster(net, bc, 5)
	if err != nil {
		t.Fatal(err)
	}
	tcfg := trace.DefaultGenConfig()
	tcfg.Taxis, tcfg.Transit = 15, 5
	tcfg.Duration = 2 * time.Hour
	ts, err := trace.Generate(net, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildRegionGraphFromTrace(a, ts)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Intra-region gamma should dominate: vehicles mostly move within a
	// region between consecutive 10s fixes.
	for i := 0; i < g.M(); i++ {
		sumOthers := 0.0
		for j := 0; j < g.M(); j++ {
			if j != i {
				sumOthers += g.Gamma(i, j)
			}
		}
		if g.Gamma(i, i) <= sumOthers {
			t.Errorf("region %d: intra gamma %.3f should dominate inter sum %.3f",
				i, g.Gamma(i, i), sumOthers)
		}
	}
}

func TestRegionGraphFromEmptyTrace(t *testing.T) {
	net := testNetwork(t)
	bc := net.TravelTimeBetweenness()
	a, err := Cluster(net, bc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildRegionGraphFromTrace(a, trace.NewSet()); err == nil {
		t.Error("empty trace must error")
	}
	if _, err := BuildRegionGraphFromAdjacency(a, &roadnet.Network{}); err == nil {
		t.Error("mismatched network must error")
	}
}

func TestClusterDeterministic(t *testing.T) {
	net := testNetwork(t)
	bc := net.TravelTimeBetweenness()
	a, err := Cluster(net, bc, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(net, bc, 6)
	if err != nil {
		t.Fatal(err)
	}
	for s := range a.Region {
		if a.Region[s] != b.Region[s] {
			t.Fatalf("clustering not deterministic at segment %d", s)
		}
	}
}

// TestClusterSpatialCoherence: regions grown by BFS should be spatially
// coherent — a member's nearest seed-distance shouldn't be wildly larger
// than the region diameter. We check a weaker invariant: every region's
// members form a connected subgraph OR were attached by the safety net
// (which cannot happen on a connected network).
func TestClusterSpatialCoherence(t *testing.T) {
	net := testNetwork(t)
	bc := net.TravelTimeBetweenness()
	a, err := Cluster(net, bc, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.M; i++ {
		members := a.Members(i)
		memberSet := make(map[roadnet.SegmentID]bool, len(members))
		for _, s := range members {
			memberSet[s] = true
		}
		// BFS within the region from its seed.
		seen := map[roadnet.SegmentID]bool{a.Seeds[i]: true}
		queue := []roadnet.SegmentID{a.Seeds[i]}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range net.Neighbors(u) {
				if memberSet[v] && !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		if len(seen) != len(members) {
			t.Errorf("region %d not connected: reached %d of %d members", i, len(seen), len(members))
		}
	}
}

func TestFutianClusteringScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale clustering in -short mode")
	}
	net, err := roadnet.Generate(roadnet.DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	bc := net.TravelTimeBetweenness()
	a, err := Cluster(net, bc, 20) // the paper's 20 regions
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = geo.FutianBBox()
}
