package cluster

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

func TestGridPartitionBasics(t *testing.T) {
	net := testNetwork(t)
	a, err := GridPartition(net, geo.FutianBBox(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.M < 1 || a.M > 6 {
		t.Fatalf("M = %d", a.M)
	}
	total := 0
	for _, n := range a.Sizes() {
		total += n
	}
	if total != net.NumSegments() {
		t.Errorf("sizes sum %d, want %d", total, net.NumSegments())
	}
}

func TestGridPartitionValidation(t *testing.T) {
	net := testNetwork(t)
	if _, err := GridPartition(&roadnet.Network{}, geo.FutianBBox(), 3); err == nil {
		t.Error("empty network must error")
	}
	if _, err := GridPartition(net, geo.FutianBBox(), 0); err == nil {
		t.Error("m=0 must error")
	}
	bad := geo.BBox{MinLat: 1, MaxLat: 0, MinLon: 0, MaxLon: 1}
	if _, err := GridPartition(net, bad, 3); err == nil {
		t.Error("invalid box must error")
	}
}

// TestAlgorithm1BeatsGridBaseline is the design-choice check behind
// Algorithm 1: on a spatially coherent coefficient field (real BC/TD heat
// maps form smooth hot and cold zones, Fig. 7), coefficient-aware growth
// must leave less within-region variance than the geography-only grid
// split with the same region count. (On adversarial checkerboard fields —
// e.g. raw per-segment BC of a perfect lattice, where adjacent segments
// alternate wildly — no spatial clustering can do better than geography,
// and Algorithm 1 degrades gracefully to the grid's level.)
func TestAlgorithm1BeatsGridBaseline(t *testing.T) {
	net := testNetwork(t)
	m := 8

	// A smooth diagonal hot-zone field over the box, mimicking the paper's
	// heat maps: high coefficients in the center-north, low at the fringes.
	box := geo.FutianBBox()
	weights := make([]float64, net.NumSegments())
	for _, seg := range net.Segments() {
		u := (seg.Midpoint.Lat - box.MinLat) / (box.MaxLat - box.MinLat)
		v := (seg.Midpoint.Lon - box.MinLon) / (box.MaxLon - box.MinLon)
		d := (u-0.65)*(u-0.65) + (v-0.5)*(v-0.5)
		weights[seg.ID] = 100 * math.Exp(-6*d) * (0.6 + 0.4*u*v)
	}

	alg1, err := Cluster(net, weights, m)
	if err != nil {
		t.Fatal(err)
	}
	_, alg1Std, err := Stats(alg1, weights)
	if err != nil {
		t.Fatal(err)
	}

	grid, err := GridPartition(net, box, m)
	if err != nil {
		t.Fatal(err)
	}
	_, gridStd, err := Stats(grid, weights)
	if err != nil {
		t.Fatal(err)
	}

	greedy, err := ClusterGreedy(net, weights, m)
	if err != nil {
		t.Fatal(err)
	}
	_, greedyStd, err := Stats(greedy, weights)
	if err != nil {
		t.Fatal(err)
	}

	// The global-greedy variant must dominate both the grid baseline and
	// the round-robin original; the round-robin original must stay within
	// 25% of the grid even on fields that favor geography.
	if greedyStd >= gridStd {
		t.Errorf("greedy within-region std %.4f should beat grid %.4f", greedyStd, gridStd)
	}
	if greedyStd >= alg1Std {
		t.Errorf("greedy within-region std %.4f should beat round-robin %.4f", greedyStd, alg1Std)
	}
	if alg1Std > 1.25*gridStd {
		t.Errorf("round-robin Algorithm 1 std %.4f degraded beyond 25%% of grid %.4f", alg1Std, gridStd)
	}
}

func TestClusterGreedyValidation(t *testing.T) {
	net := testNetwork(t)
	w := make([]float64, net.NumSegments())
	if _, err := ClusterGreedy(net, w, 0); err == nil {
		t.Error("m=0 must error")
	}
	if _, err := ClusterGreedy(net, w[:2], 3); err == nil {
		t.Error("short weights must error")
	}
	w[0] = math.NaN()
	if _, err := ClusterGreedy(net, w, 2); err == nil {
		t.Error("NaN weight must error")
	}
	if _, err := ClusterGreedy(&roadnet.Network{}, nil, 1); err == nil {
		t.Error("empty network must error")
	}
}

func TestClusterGreedyPartitionsAll(t *testing.T) {
	net := testNetwork(t)
	bc := net.TravelTimeBetweenness()
	a, err := ClusterGreedy(net, bc, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range a.Sizes() {
		total += n
	}
	if total != net.NumSegments() {
		t.Errorf("sizes sum %d, want %d", total, net.NumSegments())
	}
}
