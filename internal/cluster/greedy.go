package cluster

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

// ClusterGreedy is a strengthened variant of Algorithm 1: it keeps the
// paper's admission rule — grow a region by the adjacent segment that
// widens its coefficient band [h_low, h_high] the least — but orders
// admissions globally with a priority queue instead of strict round-robin,
// so the cheapest admission anywhere in the city always happens first.
// The paper's stated objective ("minimize the variance of node utility
// coefficients in each cluster") is the invariant; only the scheduling
// differs. On spatially coherent coefficient fields this variant dominates
// both the round-robin original and the geographic grid baseline (see the
// cluster tests), at the same O(E log E) cost.
func ClusterGreedy(net *roadnet.Network, weight []float64, m int) (*Assignment, error) {
	n := net.NumSegments()
	if n == 0 {
		return nil, fmt.Errorf("cluster: empty network")
	}
	if len(weight) != n {
		return nil, fmt.Errorf("cluster: weight has %d entries, want %d", len(weight), n)
	}
	if m < 1 || m > n {
		return nil, fmt.Errorf("cluster: m = %d out of range [1,%d]", m, n)
	}
	for s, w := range weight {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("cluster: weight[%d] = %v is not finite", s, w)
		}
	}

	seedIdx := geo.FarthestPointSample(net.Midpoints(), m)
	seeds := make([]roadnet.SegmentID, m)
	assigned := make([]int, n)
	for i := range assigned {
		assigned[i] = -1
	}
	lo := make([]float64, m)
	hi := make([]float64, m)

	pq := &admissionHeap{}
	heap.Init(pq)
	push := func(region int, node roadnet.SegmentID) {
		w := weight[node]
		cost := 0.0
		if w < lo[region] {
			cost = lo[region] - w
		} else if w > hi[region] {
			cost = w - hi[region]
		}
		heap.Push(pq, admission{cost: cost, region: region, node: node})
	}

	for i, s := range seedIdx {
		seeds[i] = roadnet.SegmentID(s)
		assigned[s] = i
		lo[i], hi[i] = weight[s], weight[s]
	}
	for i, s := range seeds {
		for _, v := range net.Neighbors(s) {
			if assigned[v] < 0 {
				push(i, v)
			}
		}
	}

	remaining := n - m
	for remaining > 0 && pq.Len() > 0 {
		adm := heap.Pop(pq).(admission)
		if assigned[adm.node] >= 0 {
			continue
		}
		// Stale cost? The region's band may have widened since this entry
		// was pushed, making the admission cheaper; or another push already
		// covers it. Recompute and reinsert when the stored cost is stale
		// on the expensive side.
		w := weight[adm.node]
		cur := 0.0
		if w < lo[adm.region] {
			cur = lo[adm.region] - w
		} else if w > hi[adm.region] {
			cur = w - hi[adm.region]
		}
		if cur < adm.cost-1e-15 {
			heap.Push(pq, admission{cost: cur, region: adm.region, node: adm.node})
			continue
		}
		assigned[adm.node] = adm.region
		if w < lo[adm.region] {
			lo[adm.region] = w
		}
		if w > hi[adm.region] {
			hi[adm.region] = w
		}
		remaining--
		for _, v := range net.Neighbors(adm.node) {
			if assigned[v] < 0 {
				push(adm.region, v)
			}
		}
	}

	// Disconnected leftovers attach to the geographically nearest seed.
	if remaining > 0 {
		mid := net.Midpoints()
		for s := range assigned {
			if assigned[s] >= 0 {
				continue
			}
			best, bestD := 0, math.Inf(1)
			for i, seed := range seeds {
				if d := geo.Equirectangular(mid[s], mid[seed]); d < bestD {
					bestD, best = d, i
				}
			}
			assigned[s] = best
		}
	}

	a := &Assignment{Region: assigned, M: m, Seeds: seeds}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: greedy: %w", err)
	}
	return a, nil
}

type admission struct {
	cost   float64
	region int
	node   roadnet.SegmentID
}

type admissionHeap []admission

func (h admissionHeap) Len() int            { return len(h) }
func (h admissionHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h admissionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *admissionHeap) Push(x interface{}) { *h = append(*h, x.(admission)) }
func (h *admissionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
