// Package cluster implements Step 2 and Step 3 of the paper's decision
// dynamics analysis: Algorithm 1 (variance-minimizing BFS clustering of road
// segments into M regions by utility coefficient) and the auxiliary region
// graph G = (R, E) with data-sharing frequency weights gamma.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

// Assignment maps every road segment to a region.
type Assignment struct {
	// Region[s] is the region index of segment s, in [0, M).
	Region []int
	// M is the number of regions.
	M int
	// Seeds[i] is the seed segment of region i.
	Seeds []roadnet.SegmentID
}

// Members returns the segments assigned to region i.
func (a *Assignment) Members(i int) []roadnet.SegmentID {
	var out []roadnet.SegmentID
	for s, r := range a.Region {
		if r == i {
			out = append(out, roadnet.SegmentID(s))
		}
	}
	return out
}

// Sizes returns the number of segments per region.
func (a *Assignment) Sizes() []int {
	sizes := make([]int, a.M)
	for _, r := range a.Region {
		if r >= 0 && r < a.M {
			sizes[r]++
		}
	}
	return sizes
}

// Validate checks that every segment is assigned to a valid region and no
// region is empty.
func (a *Assignment) Validate() error {
	sizes := make([]int, a.M)
	for s, r := range a.Region {
		if r < 0 || r >= a.M {
			return fmt.Errorf("cluster: segment %d assigned to invalid region %d", s, r)
		}
		sizes[r]++
	}
	for i, n := range sizes {
		if n == 0 {
			return fmt.Errorf("cluster: region %d is empty", i)
		}
	}
	return nil
}

// Cluster runs Algorithm 1: it partitions the network's segments into m
// regions, seeded by farthest-point sampling over the segment midpoints
// ("seeds distributed in the area"), growing each region by BFS and
// preferring neighbors whose utility coefficient w falls inside the region's
// current [low, high] band; when none qualifies, the region admits the
// frontier neighbor that widens the band the least.
//
// weight[s] must hold the utility coefficient of segment s (BC or TD).
func Cluster(net *roadnet.Network, weight []float64, m int) (*Assignment, error) {
	n := net.NumSegments()
	if n == 0 {
		return nil, fmt.Errorf("cluster: empty network")
	}
	if len(weight) != n {
		return nil, fmt.Errorf("cluster: weight has %d entries, want %d", len(weight), n)
	}
	if m < 1 || m > n {
		return nil, fmt.Errorf("cluster: m = %d out of range [1,%d]", m, n)
	}
	for s, w := range weight {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("cluster: weight[%d] = %v is not finite", s, w)
		}
	}

	// Line 1: seeds evenly distributed over the road network.
	seedIdx := geo.FarthestPointSample(net.Midpoints(), m)
	seeds := make([]roadnet.SegmentID, m)
	for i, s := range seedIdx {
		seeds[i] = roadnet.SegmentID(s)
	}

	assigned := make([]int, n)
	for i := range assigned {
		assigned[i] = -1
	}
	type regionState struct {
		queue   []roadnet.SegmentID
		low, hi float64
	}
	regions := make([]regionState, m)
	for i, s := range seeds {
		assigned[s] = i
		regions[i] = regionState{
			queue: []roadnet.SegmentID{s},
			low:   weight[s],
			hi:    weight[s],
		}
	}

	remaining := n - m
	// Round-robin growth (lines 5-15).
	for remaining > 0 {
		progress := false
		for i := range regions {
			r := &regions[i]
			// Drop exhausted frontier nodes.
			for len(r.queue) > 0 && !hasUnassignedNeighbor(net, r.queue[0], assigned) {
				r.queue = r.queue[1:]
			}
			if len(r.queue) == 0 {
				continue
			}
			u := r.queue[0]
			// Lines 8-11: admit all in-band unassigned neighbors of u.
			admitted := false
			for _, v := range net.Neighbors(u) {
				if assigned[v] >= 0 {
					continue
				}
				if weight[v] >= r.low && weight[v] <= r.hi {
					assigned[v] = i
					r.queue = append(r.queue, v)
					remaining--
					admitted = true
				}
			}
			if admitted {
				r.queue = r.queue[1:] // pop u
				progress = true
				continue
			}
			// Lines 12-15: admit the band-minimally-expanding neighbor.
			best := roadnet.SegmentID(-1)
			bestExp := math.Inf(1)
			for _, v := range net.Neighbors(u) {
				if assigned[v] >= 0 {
					continue
				}
				exp := math.Min(math.Abs(weight[v]-r.low), math.Abs(weight[v]-r.hi))
				if exp < bestExp {
					bestExp, best = exp, v
				}
			}
			if best >= 0 {
				assigned[best] = i
				r.queue = append(r.queue, best)
				r.low = math.Min(r.low, weight[best])
				r.hi = math.Max(r.hi, weight[best])
				remaining--
				progress = true
			}
		}
		if !progress {
			break
		}
	}

	// Safety net for disconnected networks: attach any stranded segment to
	// the region of its geographically nearest seed.
	if remaining > 0 {
		mid := net.Midpoints()
		for s := range assigned {
			if assigned[s] >= 0 {
				continue
			}
			best, bestD := 0, math.Inf(1)
			for i, seed := range seeds {
				if d := geo.Equirectangular(mid[s], mid[seed]); d < bestD {
					bestD, best = d, i
				}
			}
			assigned[s] = best
			remaining--
		}
	}

	a := &Assignment{Region: assigned, M: m, Seeds: seeds}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	return a, nil
}

func hasUnassignedNeighbor(net *roadnet.Network, u roadnet.SegmentID, assigned []int) bool {
	for _, v := range net.Neighbors(u) {
		if assigned[v] < 0 {
			return true
		}
	}
	return false
}

// RegionStats summarizes the utility coefficients within one region
// (Fig. 8(c): bar = mean, interval = spread).
type RegionStats struct {
	Region int
	Size   int
	Mean   float64
	Std    float64
	// P025 and P975 bound the central 95% of coefficient values.
	P025, P975 float64
}

// Stats computes per-region coefficient statistics and the average
// within-region standard deviation (the paper reports 17.08 for BC and
// 30.31 for TD on its dataset).
func Stats(a *Assignment, weight []float64) ([]RegionStats, float64, error) {
	if len(weight) != len(a.Region) {
		return nil, 0, fmt.Errorf("cluster: weight has %d entries, want %d", len(weight), len(a.Region))
	}
	byRegion := make([][]float64, a.M)
	for s, r := range a.Region {
		byRegion[r] = append(byRegion[r], weight[s])
	}
	out := make([]RegionStats, a.M)
	sumStd := 0.0
	for i, ws := range byRegion {
		st := RegionStats{Region: i, Size: len(ws)}
		if len(ws) > 0 {
			mean := 0.0
			for _, w := range ws {
				mean += w
			}
			mean /= float64(len(ws))
			variance := 0.0
			for _, w := range ws {
				variance += (w - mean) * (w - mean)
			}
			variance /= float64(len(ws))
			st.Mean = mean
			st.Std = math.Sqrt(variance)
			sorted := append([]float64(nil), ws...)
			sort.Float64s(sorted)
			st.P025 = quantile(sorted, 0.025)
			st.P975 = quantile(sorted, 0.975)
		}
		out[i] = st
		sumStd += st.Std
	}
	return out, sumStd / float64(a.M), nil
}

// quantile returns the q-quantile of sorted xs by linear interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// RegionCoefficients returns beta_i for each region: the mean utility
// coefficient of its segments, which is the constant the coarse-grained
// model approximates all the region's locations by (Step 2).
func RegionCoefficients(a *Assignment, weight []float64) ([]float64, error) {
	stats, _, err := Stats(a, weight)
	if err != nil {
		return nil, err
	}
	out := make([]float64, a.M)
	for i, st := range stats {
		out[i] = st.Mean
	}
	return out, nil
}
