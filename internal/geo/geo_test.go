package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointValid(t *testing.T) {
	tests := []struct {
		name string
		p    Point
		want bool
	}{
		{"origin", Point{0, 0}, true},
		{"futian", Point{22.54, 114.05}, true},
		{"north pole", Point{90, 0}, true},
		{"lat too high", Point{90.01, 0}, false},
		{"lat too low", Point{-90.01, 0}, false},
		{"lon too high", Point{0, 180.1}, false},
		{"lon too low", Point{0, -180.1}, false},
		{"nan lat", Point{math.NaN(), 0}, false},
		{"inf lon", Point{0, math.Inf(1)}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Valid(); got != tt.want {
				t.Errorf("Valid(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestHaversineKnownDistances(t *testing.T) {
	tests := []struct {
		name string
		a, b Point
		want float64 // meters
		tol  float64
	}{
		{"same point", Point{22.54, 114.05}, Point{22.54, 114.05}, 0, 1e-9},
		// 1 degree of latitude is ~111.19 km on a 6371km sphere.
		{"one degree lat", Point{0, 0}, Point{1, 0}, 111_195, 50},
		// One degree of longitude at the equator, same magnitude.
		{"one degree lon equator", Point{0, 0}, Point{0, 1}, 111_195, 50},
		// Futian bbox diagonal ~ sqrt(10km^2 + 12.3km^2).
		{"futian corners", Point{22.50, 113.98}, Point{22.59, 114.10}, 15_880, 300},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Haversine(tt.a, tt.b)
			if !almostEqual(got, tt.want, tt.tol) {
				t.Errorf("Haversine(%v, %v) = %.1f, want %.1f±%.1f", tt.a, tt.b, got, tt.want, tt.tol)
			}
		})
	}
}

func TestHaversineSymmetry(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{Lat: math.Mod(lat1, 90), Lon: math.Mod(lon1, 180)}
		b := Point{Lat: math.Mod(lat2, 90), Lon: math.Mod(lon2, 180)}
		return almostEqual(Haversine(a, b), Haversine(b, a), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEquirectangularMatchesHaversineAtCityScale(t *testing.T) {
	box := FutianBBox()
	pts := box.GridPoints(7, 9)
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			h := Haversine(pts[i], pts[j])
			e := Equirectangular(pts[i], pts[j])
			if h == 0 {
				continue
			}
			if rel := math.Abs(h-e) / h; rel > 1e-3 {
				t.Fatalf("equirectangular deviates %.4f%% from haversine for %v-%v", rel*100, pts[i], pts[j])
			}
		}
	}
}

func TestHaversineTriangleInequality(t *testing.T) {
	f := func(a1, o1, a2, o2, a3, o3 float64) bool {
		p := Point{math.Mod(math.Abs(a1), 89), math.Mod(o1, 179)}
		q := Point{math.Mod(math.Abs(a2), 89), math.Mod(o2, 179)}
		r := Point{math.Mod(math.Abs(a3), 89), math.Mod(o3, 179)}
		return Haversine(p, r) <= Haversine(p, q)+Haversine(q, r)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLerpEndpointsAndMidpoint(t *testing.T) {
	a := Point{22.50, 113.98}
	b := Point{22.59, 114.10}
	if got := Lerp(a, b, 0); got != a {
		t.Errorf("Lerp(a,b,0) = %v, want %v", got, a)
	}
	if got := Lerp(a, b, 1); got != b {
		t.Errorf("Lerp(a,b,1) = %v, want %v", got, b)
	}
	mid := Midpoint(a, b)
	if !almostEqual(mid.Lat, 22.545, 1e-9) || !almostEqual(mid.Lon, 114.04, 1e-9) {
		t.Errorf("Midpoint = %v", mid)
	}
}

func TestBBox(t *testing.T) {
	box := FutianBBox()
	if !box.Valid() {
		t.Fatal("FutianBBox should be valid")
	}
	if !box.Contains(box.Center()) {
		t.Error("box must contain its center")
	}
	if box.Contains(Point{22.49, 114.0}) {
		t.Error("point south of box should not be contained")
	}
	outside := Point{22.70, 113.90}
	clamped := box.Clamp(outside)
	if !box.Contains(clamped) {
		t.Errorf("Clamp(%v) = %v not inside box", outside, clamped)
	}
	if clamped.Lat != box.MaxLat || clamped.Lon != box.MinLon {
		t.Errorf("Clamp(%v) = %v, want corner (%v,%v)", outside, clamped, box.MaxLat, box.MinLon)
	}

	if w := box.WidthMeters(); !almostEqual(w, 12_330, 300) {
		t.Errorf("WidthMeters = %.0f, want ~12330", w)
	}
	if h := box.HeightMeters(); !almostEqual(h, 10_010, 300) {
		t.Errorf("HeightMeters = %.0f, want ~10010", h)
	}

	degenerate := BBox{MinLat: 1, MaxLat: 1, MinLon: 0, MaxLon: 2}
	if degenerate.Valid() {
		t.Error("degenerate box must be invalid")
	}
}

func TestGridPoints(t *testing.T) {
	box := FutianBBox()
	pts := box.GridPoints(10, 10)
	if len(pts) != 100 {
		t.Fatalf("GridPoints(10,10) returned %d points, want 100", len(pts))
	}
	for _, p := range pts {
		if !box.Contains(p) {
			t.Fatalf("grid point %v outside box", p)
		}
	}
	// Cell-center placement: first point is half a cell in from the corner.
	first := pts[0]
	wantLat := box.MinLat + (box.MaxLat-box.MinLat)/20
	if !almostEqual(first.Lat, wantLat, 1e-12) {
		t.Errorf("first grid point lat %v, want %v", first.Lat, wantLat)
	}
	if got := box.GridPoints(0, 5); got != nil {
		t.Errorf("GridPoints(0,5) = %v, want nil", got)
	}
}

func TestGridIndexNearestExactness(t *testing.T) {
	box := FutianBBox()
	pts := box.GridPoints(9, 11)
	idx, err := NewGridIndex(box, 16, 16, pts)
	if err != nil {
		t.Fatal(err)
	}
	// Brute-force oracle on a secondary grid of query points.
	queries := box.GridPoints(13, 17)
	for _, q := range queries {
		got, gotD := idx.Nearest(q)
		want, wantD := -1, math.Inf(1)
		for i, p := range pts {
			if d := Equirectangular(q, p); d < wantD {
				wantD, want = d, i
			}
		}
		if got != want && !almostEqual(gotD, wantD, 1e-9) {
			t.Fatalf("Nearest(%v) = %d (%.2fm), brute force = %d (%.2fm)", q, got, gotD, want, wantD)
		}
	}
}

func TestGridIndexErrors(t *testing.T) {
	box := FutianBBox()
	if _, err := NewGridIndex(box, 4, 4, nil); err == nil {
		t.Error("empty point set should error")
	}
	if _, err := NewGridIndex(box, 0, 4, box.GridPoints(2, 2)); err == nil {
		t.Error("zero rows should error")
	}
	bad := BBox{MinLat: 3, MaxLat: 1, MinLon: 0, MaxLon: 1}
	if _, err := NewGridIndex(bad, 4, 4, box.GridPoints(2, 2)); err == nil {
		t.Error("invalid box should error")
	}
}

func TestGridIndexWithinRadius(t *testing.T) {
	box := FutianBBox()
	pts := box.GridPoints(10, 10)
	idx, err := NewGridIndex(box, 20, 20, pts)
	if err != nil {
		t.Fatal(err)
	}
	center := box.Center()
	radius := 2000.0
	got := idx.WithinRadius(center, radius)
	want := 0
	for _, p := range pts {
		if Equirectangular(center, p) <= radius {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("WithinRadius found %d points, brute force %d", len(got), want)
	}
	for _, i := range got {
		if d := Equirectangular(center, idx.Point(i)); d > radius {
			t.Errorf("point %d at %.1fm exceeds radius %.1fm", i, d, radius)
		}
	}
	if got := idx.WithinRadius(center, -1); got != nil {
		t.Errorf("negative radius should return nil, got %v", got)
	}
}

func TestVoronoiAssignsNearestSite(t *testing.T) {
	box := FutianBBox()
	sites := box.GridPoints(10, 10) // the paper's 100 edge servers
	v, err := NewVoronoi(box, sites)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumCells() != 100 {
		t.Fatalf("NumCells = %d, want 100", v.NumCells())
	}
	// Every site's own location must map to its own cell.
	for i := range sites {
		if got := v.CellOf(sites[i]); got != i {
			t.Fatalf("CellOf(site %d) = %d", i, got)
		}
	}
	// Oracle check on random-ish interior points.
	queries := box.GridPoints(23, 29)
	for _, q := range queries {
		got := v.CellOf(q)
		want, wantD := -1, math.Inf(1)
		for i, s := range sites {
			if d := Equirectangular(q, s); d < wantD {
				wantD, want = d, i
			}
		}
		if got != want {
			gotD := Equirectangular(q, sites[got])
			if !almostEqual(gotD, wantD, 1e-9) {
				t.Fatalf("CellOf(%v) = %d, want %d", q, got, want)
			}
		}
	}
}

func TestVoronoiCellCountsTotal(t *testing.T) {
	box := FutianBBox()
	v, err := NewVoronoi(box, box.GridPoints(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	pts := box.GridPoints(17, 19)
	counts := v.CellCounts(pts)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(pts) {
		t.Errorf("cell counts sum to %d, want %d", total, len(pts))
	}
	assign := v.Assign(pts)
	if len(assign) != len(pts) {
		t.Fatalf("Assign returned %d entries, want %d", len(assign), len(pts))
	}
}

func TestVoronoiEmptySites(t *testing.T) {
	if _, err := NewVoronoi(FutianBBox(), nil); err == nil {
		t.Error("NewVoronoi with no sites should error")
	}
}

func TestFarthestPointSample(t *testing.T) {
	box := FutianBBox()
	cands := box.GridPoints(12, 12)
	k := 20
	sel := FarthestPointSample(cands, k)
	if len(sel) != k {
		t.Fatalf("selected %d, want %d", len(sel), k)
	}
	seen := make(map[int]bool, k)
	for _, i := range sel {
		if seen[i] {
			t.Fatalf("duplicate selection %d", i)
		}
		seen[i] = true
	}
	// Spread check: the minimum pairwise distance among selected points must
	// be much larger than the candidate grid spacing (~1km).
	minD := math.Inf(1)
	for i := 0; i < len(sel); i++ {
		for j := i + 1; j < len(sel); j++ {
			if d := Equirectangular(cands[sel[i]], cands[sel[j]]); d < minD {
				minD = d
			}
		}
	}
	if minD < 1500 {
		t.Errorf("farthest point sample min pairwise distance %.0fm, want >= 1500m", minD)
	}
}

func TestFarthestPointSampleEdgeCases(t *testing.T) {
	box := FutianBBox()
	cands := box.GridPoints(2, 2)
	if got := FarthestPointSample(cands, 0); got != nil {
		t.Errorf("k=0 should return nil, got %v", got)
	}
	if got := FarthestPointSample(nil, 3); got != nil {
		t.Errorf("empty candidates should return nil, got %v", got)
	}
	all := FarthestPointSample(cands, 10)
	if len(all) != len(cands) {
		t.Errorf("k > len returns all %d candidates, got %d", len(cands), len(all))
	}
}
