package geo

import (
	"fmt"
	"math"
)

// Voronoi partitions a bounding box among a fixed set of sites (edge-server
// locations in the paper): every query point belongs to the cell of its
// nearest site. This is the discrete nearest-site formulation the paper uses
// ("the whole area is partitioned into a set of Voronoi cells [18]; each cell
// has one edge server, which is the closest edge server to all the locations
// within this cell").
type Voronoi struct {
	sites []Point
	index *GridIndex
}

// NewVoronoi builds a Voronoi partition of box with the given sites.
func NewVoronoi(box BBox, sites []Point) (*Voronoi, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("geo: voronoi requires at least one site")
	}
	// Grid resolution ~ 4x the site count per axis keeps cells small relative
	// to typical inter-site spacing without excessive memory.
	n := int(math.Ceil(math.Sqrt(float64(len(sites))))) * 4
	if n < 8 {
		n = 8
	}
	idx, err := NewGridIndex(box, n, n, sites)
	if err != nil {
		return nil, fmt.Errorf("geo: building voronoi index: %w", err)
	}
	return &Voronoi{sites: append([]Point(nil), sites...), index: idx}, nil
}

// NumCells returns the number of Voronoi cells (sites).
func (v *Voronoi) NumCells() int { return len(v.sites) }

// Site returns the location of cell i's site.
func (v *Voronoi) Site(i int) Point { return v.sites[i] }

// CellOf returns the index of the cell containing p, i.e. the nearest site.
func (v *Voronoi) CellOf(p Point) int {
	i, _ := v.index.Nearest(p)
	return i
}

// CellAndDistance returns the nearest site index and the distance to it in
// meters.
func (v *Voronoi) CellAndDistance(p Point) (cell int, meters float64) {
	return v.index.Nearest(p)
}

// Assign maps each point to its cell. The result has len(pts) entries.
func (v *Voronoi) Assign(pts []Point) []int {
	out := make([]int, len(pts))
	for i, p := range pts {
		out[i] = v.CellOf(p)
	}
	return out
}

// CellCounts returns, for each cell, how many of pts fall inside it.
func (v *Voronoi) CellCounts(pts []Point) []int {
	counts := make([]int, len(v.sites))
	for _, p := range pts {
		counts[v.CellOf(p)]++
	}
	return counts
}

// FarthestPointSample selects k points from candidates that are approximately
// evenly spread: it starts from the candidate nearest the centroid and
// greedily adds the candidate farthest from the already-selected set. It
// returns the selected candidate indices in selection order.
//
// Algorithm 1 in the paper requires seed segments "distributed in the area";
// farthest-point sampling is the standard way to realize that requirement.
func FarthestPointSample(candidates []Point, k int) []int {
	if k <= 0 || len(candidates) == 0 {
		return nil
	}
	if k >= len(candidates) {
		out := make([]int, len(candidates))
		for i := range out {
			out[i] = i
		}
		return out
	}
	// Start near the centroid for determinism and central coverage.
	var cLat, cLon float64
	for _, p := range candidates {
		cLat += p.Lat
		cLon += p.Lon
	}
	centroid := Point{Lat: cLat / float64(len(candidates)), Lon: cLon / float64(len(candidates))}
	first, bestD := 0, math.Inf(1)
	for i, p := range candidates {
		if d := Equirectangular(centroid, p); d < bestD {
			bestD, first = d, i
		}
	}

	selected := make([]int, 0, k)
	selected = append(selected, first)
	minDist := make([]float64, len(candidates))
	for i, p := range candidates {
		minDist[i] = Equirectangular(candidates[first], p)
	}
	for len(selected) < k {
		next, far := -1, -1.0
		for i, d := range minDist {
			if d > far {
				far, next = d, i
			}
		}
		selected = append(selected, next)
		for i, p := range candidates {
			if d := Equirectangular(candidates[next], p); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return selected
}
