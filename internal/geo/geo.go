// Package geo provides the geometric substrate for the cooperative-perception
// simulation: geographic points, distance metrics, bounding boxes, a uniform
// grid index for nearest-neighbour queries, nearest-site Voronoi partitioning
// (used to assign vehicles to edge servers), and farthest-point sampling
// (used to seed region clustering).
//
// All coordinates are WGS-84 latitude/longitude degrees. Distances are in
// meters.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used by the distance metrics.
const EarthRadiusMeters = 6_371_000.0

// Point is a geographic coordinate in degrees.
type Point struct {
	Lat float64 // latitude, degrees north
	Lon float64 // longitude, degrees east
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.6f, %.6f)", p.Lat, p.Lon)
}

// Valid reports whether the point is a finite coordinate within the legal
// latitude/longitude ranges.
func (p Point) Valid() bool {
	if math.IsNaN(p.Lat) || math.IsNaN(p.Lon) || math.IsInf(p.Lat, 0) || math.IsInf(p.Lon, 0) {
		return false
	}
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180
}

func degToRad(d float64) float64 { return d * math.Pi / 180 }

// Haversine returns the great-circle distance between a and b in meters.
func Haversine(a, b Point) float64 {
	lat1, lon1 := degToRad(a.Lat), degToRad(a.Lon)
	lat2, lon2 := degToRad(b.Lat), degToRad(b.Lon)
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(s)))
}

// Equirectangular returns the equirectangular-projection approximation of the
// distance between a and b in meters. It is accurate to well under 0.1% at
// city scale (the Futian bounding box spans ~12 km) and is several times
// faster than Haversine, which matters inside the grid index and Voronoi
// assignment hot loops.
func Equirectangular(a, b Point) float64 {
	meanLat := degToRad((a.Lat + b.Lat) / 2)
	dx := degToRad(b.Lon-a.Lon) * math.Cos(meanLat)
	dy := degToRad(b.Lat - a.Lat)
	return EarthRadiusMeters * math.Sqrt(dx*dx+dy*dy)
}

// Lerp linearly interpolates between a and b; t=0 yields a, t=1 yields b.
// It treats lat/lon as a flat plane, which is fine at city scale.
func Lerp(a, b Point, t float64) Point {
	return Point{
		Lat: a.Lat + (b.Lat-a.Lat)*t,
		Lon: a.Lon + (b.Lon-a.Lon)*t,
	}
}

// Midpoint returns the planar midpoint of a and b.
func Midpoint(a, b Point) Point { return Lerp(a, b, 0.5) }

// BBox is an axis-aligned geographic bounding box.
type BBox struct {
	MinLat, MinLon float64 // south-west corner
	MaxLat, MaxLon float64 // north-east corner
}

// FutianBBox is the evaluation bounding box used throughout the paper:
// south-west corner (22.50, 113.98), north-east corner (22.59, 114.10).
func FutianBBox() BBox {
	return BBox{MinLat: 22.50, MinLon: 113.98, MaxLat: 22.59, MaxLon: 114.10}
}

// Valid reports whether the box is non-degenerate and properly ordered.
func (b BBox) Valid() bool {
	sw := Point{Lat: b.MinLat, Lon: b.MinLon}
	ne := Point{Lat: b.MaxLat, Lon: b.MaxLon}
	return sw.Valid() && ne.Valid() && b.MinLat < b.MaxLat && b.MinLon < b.MaxLon
}

// Contains reports whether p lies inside the box (inclusive).
func (b BBox) Contains(p Point) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat && p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

// Center returns the box center.
func (b BBox) Center() Point {
	return Point{Lat: (b.MinLat + b.MaxLat) / 2, Lon: (b.MinLon + b.MaxLon) / 2}
}

// Clamp returns p constrained to lie within the box.
func (b BBox) Clamp(p Point) Point {
	return Point{
		Lat: math.Max(b.MinLat, math.Min(b.MaxLat, p.Lat)),
		Lon: math.Max(b.MinLon, math.Min(b.MaxLon, p.Lon)),
	}
}

// WidthMeters returns the east-west extent of the box in meters, measured at
// the box's central latitude.
func (b BBox) WidthMeters() float64 {
	c := b.Center()
	return Equirectangular(
		Point{Lat: c.Lat, Lon: b.MinLon},
		Point{Lat: c.Lat, Lon: b.MaxLon},
	)
}

// HeightMeters returns the north-south extent of the box in meters.
func (b BBox) HeightMeters() float64 {
	return Equirectangular(
		Point{Lat: b.MinLat, Lon: b.MinLon},
		Point{Lat: b.MaxLat, Lon: b.MinLon},
	)
}

// GridPoints returns rows*cols points evenly distributed over the box,
// placed at cell centers so no point sits on the boundary. This mirrors the
// paper's "100 stationary edge servers evenly deployed in the target area"
// (a 10x10 layout).
func (b BBox) GridPoints(rows, cols int) []Point {
	if rows <= 0 || cols <= 0 {
		return nil
	}
	pts := make([]Point, 0, rows*cols)
	dLat := (b.MaxLat - b.MinLat) / float64(rows)
	dLon := (b.MaxLon - b.MinLon) / float64(cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pts = append(pts, Point{
				Lat: b.MinLat + (float64(r)+0.5)*dLat,
				Lon: b.MinLon + (float64(c)+0.5)*dLon,
			})
		}
	}
	return pts
}
