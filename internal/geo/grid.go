package geo

import (
	"fmt"
	"math"
)

// GridIndex is a uniform spatial grid over a bounding box that supports fast
// approximate-nearest-neighbour queries among a fixed point set. It is the
// workhorse behind Voronoi cell assignment (vehicle -> nearest edge server)
// and map matching (GPS fix -> nearest road segment).
//
// The zero value is not usable; construct with NewGridIndex.
type GridIndex struct {
	box        BBox
	rows, cols int
	cellLat    float64
	cellLon    float64
	points     []Point
	cells      [][]int32 // cells[r*cols+c] = indices into points
}

// NewGridIndex builds an index over pts within box using a rows x cols grid.
// Points outside the box are clamped to the boundary cell. It returns an
// error for an empty point set, a degenerate box, or non-positive dimensions.
func NewGridIndex(box BBox, rows, cols int, pts []Point) (*GridIndex, error) {
	if !box.Valid() {
		return nil, fmt.Errorf("geo: invalid bounding box %+v", box)
	}
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("geo: grid dimensions must be positive, got %dx%d", rows, cols)
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("geo: cannot index an empty point set")
	}
	g := &GridIndex{
		box:     box,
		rows:    rows,
		cols:    cols,
		cellLat: (box.MaxLat - box.MinLat) / float64(rows),
		cellLon: (box.MaxLon - box.MinLon) / float64(cols),
		points:  make([]Point, len(pts)),
		cells:   make([][]int32, rows*cols),
	}
	copy(g.points, pts)
	for i, p := range g.points {
		r, c := g.cellOf(p)
		idx := r*cols + c
		g.cells[idx] = append(g.cells[idx], int32(i))
	}
	return g, nil
}

// Len returns the number of indexed points.
func (g *GridIndex) Len() int { return len(g.points) }

// Point returns the i-th indexed point.
func (g *GridIndex) Point(i int) Point { return g.points[i] }

func (g *GridIndex) cellOf(p Point) (row, col int) {
	row = int((p.Lat - g.box.MinLat) / g.cellLat)
	col = int((p.Lon - g.box.MinLon) / g.cellLon)
	if row < 0 {
		row = 0
	}
	if row >= g.rows {
		row = g.rows - 1
	}
	if col < 0 {
		col = 0
	}
	if col >= g.cols {
		col = g.cols - 1
	}
	return row, col
}

// Nearest returns the index of the indexed point closest to q (by
// equirectangular distance) and that distance in meters. The search expands
// ring by ring from q's cell; once a candidate is found the search continues
// one extra ring to guarantee exactness despite cell-boundary effects.
func (g *GridIndex) Nearest(q Point) (idx int, dist float64) {
	qr, qc := g.cellOf(q)
	best := -1
	bestDist := math.Inf(1)
	maxRing := g.rows
	if g.cols > maxRing {
		maxRing = g.cols
	}
	// extraRings ensures exactness: after the first hit, a nearer point can
	// still hide in the next ring because distance-to-cell is not uniform.
	extraAfterHit := -1
	for ring := 0; ring <= maxRing; ring++ {
		if extraAfterHit >= 0 && ring > extraAfterHit {
			break
		}
		found := g.scanRing(q, qr, qc, ring, &best, &bestDist)
		if found && extraAfterHit < 0 {
			// Continue scanning rings until the ring's minimum possible
			// distance exceeds bestDist; +2 rings is a safe bound for a
			// uniform grid at city scale.
			extraAfterHit = ring + 2
		}
	}
	return best, bestDist
}

// scanRing scans the square ring at Chebyshev radius ring around (qr,qc),
// updating best/bestDist. It reports whether the ring contained any point.
func (g *GridIndex) scanRing(q Point, qr, qc, ring int, best *int, bestDist *float64) bool {
	found := false
	visit := func(r, c int) {
		if r < 0 || r >= g.rows || c < 0 || c >= g.cols {
			return
		}
		for _, i := range g.cells[r*g.cols+c] {
			found = true
			d := Equirectangular(q, g.points[i])
			if d < *bestDist {
				*bestDist = d
				*best = int(i)
			}
		}
	}
	if ring == 0 {
		visit(qr, qc)
		return found
	}
	for c := qc - ring; c <= qc+ring; c++ {
		visit(qr-ring, c)
		visit(qr+ring, c)
	}
	for r := qr - ring + 1; r <= qr+ring-1; r++ {
		visit(r, qc-ring)
		visit(r, qc+ring)
	}
	return found
}

// WithinRadius returns the indices of all indexed points within radius meters
// of q, in unspecified order.
func (g *GridIndex) WithinRadius(q Point, radius float64) []int {
	if radius < 0 {
		return nil
	}
	// Conservative cell window: convert radius to degree extents.
	latExtent := radius / EarthRadiusMeters * 180 / math.Pi
	lonExtent := latExtent / math.Cos(degToRad(q.Lat))
	r0, c0 := g.cellOf(Point{Lat: q.Lat - latExtent, Lon: q.Lon - lonExtent})
	r1, c1 := g.cellOf(Point{Lat: q.Lat + latExtent, Lon: q.Lon + lonExtent})
	var out []int
	for r := r0; r <= r1; r++ {
		for c := c0; c <= c1; c++ {
			for _, i := range g.cells[r*g.cols+c] {
				if Equirectangular(q, g.points[i]) <= radius {
					out = append(out, int(i))
				}
			}
		}
	}
	return out
}
