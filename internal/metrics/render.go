package metrics

import (
	"fmt"
	"io"
	"strings"
)

// ASCII rendering of the experiment outputs: bar charts (Fig. 8(c)-style
// coefficient distributions, Fig. 9-style convergence bars) and line charts
// (Fig. 10-style share trajectories), plus aligned text tables. The goal is
// that `cmd/repro` prints every table and figure of the paper in a form
// directly comparable with the printed version.

// RenderOption configures one Render call: exactly one content option
// (Lines, Bars, or Rows) selects what is drawn, and WithSize adjusts the
// plot dimensions where they apply.
type RenderOption func(*renderConfig)

type renderConfig struct {
	kinds  []string // content options applied, for arity checking
	series []Series
	labels []string
	values []float64
	rows   [][]string
	width  int
	height int
}

// Lines renders the series as a character line chart (Fig. 10 style).
func Lines(series ...Series) RenderOption {
	return func(c *renderConfig) {
		c.kinds = append(c.kinds, "lines")
		c.series = series
	}
}

// Bars renders labeled values as a horizontal bar chart (Fig. 9 style).
func Bars(labels []string, values []float64) RenderOption {
	return func(c *renderConfig) {
		c.kinds = append(c.kinds, "bars")
		c.labels, c.values = labels, values
	}
}

// Rows renders an aligned text table; the first row is the header.
func Rows(rows [][]string) RenderOption {
	return func(c *renderConfig) {
		c.kinds = append(c.kinds, "rows")
		c.rows = rows
	}
}

// WithSize sets the plot width and height (line charts) or bar width (bar
// charts; height is ignored). Zero keeps the defaults.
func WithSize(width, height int) RenderOption {
	return func(c *renderConfig) { c.width, c.height = width, height }
}

// Render draws one chart or table selected by the options:
//
//	Render(w, Lines(s1, s2), WithSize(64, 10))
//	Render(w, Bars(labels, values))
//	Render(w, Rows(rows))
//
// It is the option-style companion of NewSeries; the positional Table,
// BarChart, and LineChart functions remain for direct use.
func Render(w io.Writer, opts ...RenderOption) error {
	c := renderConfig{width: 0, height: 0}
	for _, opt := range opts {
		opt(&c)
	}
	if len(c.kinds) != 1 {
		return fmt.Errorf("metrics: Render needs exactly one of Lines, Bars, or Rows (got %d)", len(c.kinds))
	}
	switch c.kinds[0] {
	case "lines":
		width, height := c.width, c.height
		if width == 0 {
			width = 60
		}
		if height == 0 {
			height = 12
		}
		return LineChart(w, c.series, width, height)
	case "bars":
		width := c.width
		if width == 0 {
			width = 40
		}
		return BarChart(w, c.labels, c.values, width)
	default:
		return Table(w, c.rows)
	}
}

// Table renders rows with aligned columns. The first row is treated as the
// header and underlined.
func Table(w io.Writer, rows [][]string) error {
	if len(rows) == 0 {
		return nil
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for c, cell := range row {
			if c >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	writeRow := func(row []string) error {
		var b strings.Builder
		for c, cell := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[c]-len(cell)))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(rows[0]); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
		return err
	}
	for _, row := range rows[1:] {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// BarChart renders horizontal bars scaled to maxWidth characters.
func BarChart(w io.Writer, labels []string, values []float64, maxWidth int) error {
	if len(labels) != len(values) {
		return fmt.Errorf("metrics: %d labels but %d values", len(labels), len(values))
	}
	if maxWidth < 1 {
		maxWidth = 40
	}
	peak := 0.0
	for _, v := range values {
		if v > peak {
			peak = v
		}
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for i, v := range values {
		n := 0
		if peak > 0 && v > 0 {
			n = int(float64(maxWidth) * v / peak)
			if n == 0 {
				n = 1
			}
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s %s\n", labelW, labels[i],
			strings.Repeat("#", n), FormatFloat(v)); err != nil {
			return err
		}
	}
	return nil
}

// LineChart renders multiple series as a height x width character plot with
// one glyph per series, sharing the y-range [0, max]. Series are sampled
// (nearest) to fit the width.
func LineChart(w io.Writer, series []Series, width, height int) error {
	if len(series) == 0 {
		return fmt.Errorf("metrics: no series to plot")
	}
	if width < 8 {
		width = 60
	}
	if height < 4 {
		height = 12
	}
	glyphs := []byte{'*', '+', 'o', 'x', '@', '%', '&', '='}
	peak := 0.0
	longest := 0
	for _, s := range series {
		for _, v := range s.Values {
			if v > peak {
				peak = v
			}
		}
		if s.Len() > longest {
			longest = s.Len()
		}
	}
	if longest == 0 {
		return fmt.Errorf("metrics: all series empty")
	}
	if peak == 0 {
		peak = 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for c := 0; c < width; c++ {
			idx := c * (s.Len() - 1) / max(1, width-1)
			if idx >= s.Len() {
				idx = s.Len() - 1
			}
			if s.Len() == 0 {
				continue
			}
			v := s.Values[idx]
			r := height - 1 - int(v/peak*float64(height-1)+0.5)
			if r < 0 {
				r = 0
			}
			if r >= height {
				r = height - 1
			}
			grid[r][c] = g
		}
	}
	for r, row := range grid {
		y := peak * float64(height-1-r) / float64(height-1)
		if _, err := fmt.Fprintf(w, "%8s |%s\n", FormatFloat(y), string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%8s +%s\n", "", strings.Repeat("-", width)); err != nil {
		return err
	}
	var legend strings.Builder
	for si, s := range series {
		if si > 0 {
			legend.WriteString("   ")
		}
		fmt.Fprintf(&legend, "%c=%s", glyphs[si%len(glyphs)], s.Name)
	}
	_, err := fmt.Fprintf(w, "%8s  %s\n", "", legend.String())
	return err
}

// WriteCSV emits series as columns with a header row; series of different
// lengths are padded with empty cells.
func WriteCSV(w io.Writer, series []Series) error {
	if len(series) == 0 {
		return fmt.Errorf("metrics: no series to export")
	}
	longest := 0
	var header []string
	header = append(header, "round")
	for _, s := range series {
		header = append(header, s.Name)
		if s.Len() > longest {
			longest = s.Len()
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for r := 0; r < longest; r++ {
		row := []string{fmt.Sprintf("%d", r)}
		for _, s := range series {
			if r < s.Len() {
				row = append(row, FormatFloat(s.Values[r]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
