package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	s.Name = "p1"
	if _, ok := s.Last(); ok {
		t.Error("empty series has no last")
	}
	s.Append(0.1)
	s.Append(0.2)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	last, ok := s.Last()
	if !ok || last != 0.2 {
		t.Errorf("Last = %f,%v", last, ok)
	}
}

func TestConvergenceRound(t *testing.T) {
	s := Series{Values: []float64{0.1, 0.3, 0.5, 0.62, 0.64, 0.65, 0.66}}
	tests := []struct {
		target, eps float64
		wantRound   int
		wantOK      bool
	}{
		{0.65, 0.02, 4, true},    // rounds 4..6 stay within 0.02
		{0.65, 0.005, 0, false},  // the final 0.66 is 0.01 away: never converges
		{0.65, 0.0005, 0, false}, // likewise
		{0.9, 0.05, 0, false},
		{0.1, 5, 0, true}, // huge eps: converged from the start
	}
	for _, tt := range tests {
		got, ok := s.ConvergenceRound(tt.target, tt.eps)
		if ok != tt.wantOK || (ok && got != tt.wantRound) {
			t.Errorf("ConvergenceRound(%f,%f) = %d,%v want %d,%v",
				tt.target, tt.eps, got, ok, tt.wantRound, tt.wantOK)
		}
	}
	empty := Series{}
	if _, ok := empty.ConvergenceRound(0.5, 0.1); ok {
		t.Error("empty series cannot converge")
	}
}

// TestConvergenceRoundMonotoneInEps: looser tolerance never converges later.
func TestConvergenceRoundMonotoneInEps(t *testing.T) {
	s := Series{Values: []float64{0.9, 0.7, 0.5, 0.45, 0.42, 0.41, 0.405, 0.401, 0.4005, 0.4001}}
	prev := -1
	for _, eps := range []float64{0.2, 0.1, 0.05, 0.01, 0.001} {
		r, ok := s.ConvergenceRound(0.4, eps)
		if !ok {
			continue
		}
		if prev >= 0 && r < prev {
			t.Errorf("eps=%f converged at %d, earlier than tighter tolerance %d", eps, r, prev)
		}
		prev = r
	}
}

func TestDeltas(t *testing.T) {
	s := Series{Values: []float64{0.1, 0.4, 0.2}}
	d := s.Deltas()
	if len(d) != 2 || math.Abs(d[0]-0.3) > 1e-12 || math.Abs(d[1]-0.2) > 1e-12 {
		t.Errorf("Deltas = %v", d)
	}
	if got := s.MaxAbsDelta(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("MaxAbsDelta = %f", got)
	}
	if (&Series{Values: []float64{1}}).Deltas() != nil {
		t.Error("short series has no deltas")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Errorf("Std = %f", s.Std)
	}
	if math.Abs(s.P25-2) > 1e-12 || math.Abs(s.P75-4) > 1e-12 {
		t.Errorf("quartiles = %f, %f", s.P25, s.P75)
	}
	if math.Abs(s.CoeffVariation-s.Std/3) > 1e-12 {
		t.Errorf("CV = %f", s.CoeffVariation)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestQuantileProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1000))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.P25 && s.P25 <= s.Median && s.Median <= s.P75 && s.P75 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuantileEdges(t *testing.T) {
	cases := []struct {
		name   string
		sorted []float64
		q      float64
		want   float64
	}{
		{"empty", nil, 0.5, 0},
		{"empty zero-length slice", []float64{}, 0.9, 0},
		{"singleton any q", []float64{7}, 0.3, 7},
		{"singleton q=0", []float64{7}, 0, 7},
		{"singleton q=1", []float64{7}, 1, 7},
		{"clamp below", []float64{1, 2, 3}, -1, 1},
		{"clamp above", []float64{1, 2, 3}, 2, 3},
		{"q=0 is min", []float64{1, 2, 3}, 0, 1},
		{"q=1 is max", []float64{1, 2, 3}, 1, 3},
		{"pair midpoint", []float64{2, 4}, 0.5, 3},
		{"pair quarter", []float64{0, 4}, 0.25, 1},
		{"interior interpolation", []float64{1, 2, 3, 4}, 0.5, 2.5},
		{"ties", []float64{5, 5, 5}, 0.5, 5},
		{"negative values", []float64{-4, -2}, 0.5, -3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Quantile(tc.sorted, tc.q); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Quantile(%v, %v) = %v, want %v", tc.sorted, tc.q, got, tc.want)
			}
		})
	}
}

func TestNewSeriesOptions(t *testing.T) {
	s := NewSeries("shares", WithValues(0.1, 0.2), WithCapacity(16))
	if s.Name != "shares" || s.Len() != 2 {
		t.Fatalf("series = %+v", s)
	}
	if cap(s.Values) < 16 {
		t.Errorf("capacity = %d, want >= 16", cap(s.Values))
	}
	s.Append(0.3)
	if v, ok := s.Last(); !ok || v != 0.3 {
		t.Errorf("Last = %v, %v", v, ok)
	}
	vals := []float64{1, 2}
	s2 := NewSeries("copy", WithValues(vals...))
	vals[0] = 99
	if s2.Values[0] != 1 {
		t.Error("WithValues must copy its input")
	}
}

func TestRenderOptions(t *testing.T) {
	var buf bytes.Buffer
	lines := NewSeries("a", WithValues(0, 1, 2))
	if err := Render(&buf, Lines(*lines), WithSize(20, 5)); err != nil {
		t.Fatalf("Render(Lines): %v", err)
	}
	if !strings.Contains(buf.String(), "*=a") {
		t.Errorf("line chart legend missing:\n%s", buf.String())
	}
	buf.Reset()
	if err := Render(&buf, Bars([]string{"x"}, []float64{2})); err != nil {
		t.Fatalf("Render(Bars): %v", err)
	}
	buf.Reset()
	if err := Render(&buf, Rows([][]string{{"h"}, {"v"}})); err != nil {
		t.Fatalf("Render(Rows): %v", err)
	}
	if err := Render(&buf); err == nil {
		t.Error("Render with no content option should fail")
	}
	if err := Render(&buf, Rows(nil), Bars(nil, nil)); err == nil {
		t.Error("Render with two content options should fail")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0, 0.1, 0.2, 0.9, 1.0}, 2)
	if len(h) != 2 || h[0] != 3 || h[1] != 2 {
		t.Errorf("Histogram = %v", h)
	}
	if Histogram(nil, 3) != nil {
		t.Error("empty input")
	}
	if Histogram([]float64{1}, 0) != nil {
		t.Error("zero bins")
	}
	same := Histogram([]float64{5, 5, 5}, 4)
	if same[0] != 3 {
		t.Errorf("constant input histogram = %v", same)
	}
}

func TestApproximationRatio(t *testing.T) {
	if r := ApproximationRatio(23, 20); math.Abs(r-1.15) > 1e-12 {
		t.Errorf("ratio = %f", r)
	}
	if r := ApproximationRatio(0, 0); r != 1 {
		t.Errorf("0/0 ratio = %f", r)
	}
	if r := ApproximationRatio(5, 0); !math.IsInf(r, 1) {
		t.Errorf("n/0 ratio = %f", r)
	}
}

func TestFormatFloat(t *testing.T) {
	if FormatFloat(math.NaN()) != "nan" {
		t.Error("NaN format")
	}
	if got := FormatFloat(0.5); got != "0.5000" {
		t.Errorf("FormatFloat(0.5) = %q", got)
	}
	if got := FormatFloat(123456); !strings.Contains(got, "e") {
		t.Errorf("large value should use scientific notation, got %q", got)
	}
	if got := FormatFloat(0.0000001); !strings.Contains(got, "e") {
		t.Errorf("tiny value should use scientific notation, got %q", got)
	}
	if got := FormatFloat(0); got != "0.0000" {
		t.Errorf("zero = %q", got)
	}
}

func TestTable(t *testing.T) {
	var buf bytes.Buffer
	rows := [][]string{
		{"decision", "utility", "cost"},
		{"P1", "20", "1.6"},
		{"P8", "0", "0"},
	}
	if err := Table(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Error("missing header underline")
	}
	if !strings.Contains(lines[2], "P1") || !strings.Contains(lines[2], "1.6") {
		t.Error("row content missing")
	}
	if err := Table(&buf, nil); err != nil {
		t.Error("empty table must be a no-op")
	}
}

func TestBarChart(t *testing.T) {
	var buf bytes.Buffer
	err := BarChart(&buf, []string{"a", "bb"}, []float64{1, 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("bar chart lines = %d", len(lines))
	}
	if strings.Count(lines[1], "#") != 10 {
		t.Errorf("max bar should be full width: %q", lines[1])
	}
	if strings.Count(lines[0], "#") != 5 {
		t.Errorf("half bar should be half width: %q", lines[0])
	}
	if err := BarChart(&buf, []string{"a"}, []float64{1, 2}, 10); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestLineChart(t *testing.T) {
	var buf bytes.Buffer
	series := []Series{
		{Name: "p1", Values: []float64{0, 0.25, 0.5, 0.75, 1}},
		{Name: "p8", Values: []float64{1, 0.75, 0.5, 0.25, 0}},
	}
	if err := LineChart(&buf, series, 40, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "p1") || !strings.Contains(out, "p8") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("series glyphs missing")
	}
	if err := LineChart(&buf, nil, 40, 8); err == nil {
		t.Error("no series must error")
	}
	if err := LineChart(&buf, []Series{{Name: "e"}}, 40, 8); err == nil {
		t.Error("empty series must error")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	series := []Series{
		{Name: "a", Values: []float64{1, 2, 3}},
		{Name: "b", Values: []float64{4}},
	}
	if err := WriteCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if lines[0] != "round,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasSuffix(lines[2], ",") {
		t.Errorf("short series should pad: %q", lines[2])
	}
	if err := WriteCSV(&buf, nil); err == nil {
		t.Error("no series must error")
	}
}
