// Package metrics provides the measurement and reporting layer of the
// experiment harness: time series of decision shares, convergence-time
// detection with tolerance eps (the quantity plotted in Fig. 9), summary
// statistics, CSV export, and ASCII renderings of the paper's figures for
// terminal output.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Series is a named sequence of float samples, one per round.
type Series struct {
	Name   string
	Values []float64
}

// SeriesOption configures a Series built by NewSeries.
type SeriesOption func(*Series)

// WithValues seeds the series with initial samples (copied).
func WithValues(vs ...float64) SeriesOption {
	return func(s *Series) { s.Values = append(s.Values[:0], vs...) }
}

// WithCapacity pre-allocates room for n samples.
func WithCapacity(n int) SeriesOption {
	return func(s *Series) {
		if n > cap(s.Values) {
			vals := make([]float64, len(s.Values), n)
			copy(vals, s.Values)
			s.Values = vals
		}
	}
}

// NewSeries returns a named series configured by the options. This is the
// package's canonical constructor style; see Render for the matching
// option-style renderer.
func NewSeries(name string, opts ...SeriesOption) *Series {
	s := &Series{Name: name}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Append adds a sample.
func (s *Series) Append(v float64) { s.Values = append(s.Values, v) }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// Last returns the final sample; ok is false for an empty series.
func (s *Series) Last() (float64, bool) {
	if len(s.Values) == 0 {
		return 0, false
	}
	return s.Values[len(s.Values)-1], true
}

// ConvergenceRound returns the first round t such that every sample from t
// to the end lies within [target-eps, target+eps] — the paper's definition
// of convergence time ("the time duration that p converges to the interval
// [p* - eps, p* + eps]"). ok is false if the series never converges.
func (s *Series) ConvergenceRound(target, eps float64) (round int, ok bool) {
	if len(s.Values) == 0 {
		return 0, false
	}
	// Scan backward for the last out-of-band sample.
	last := -1
	for i := len(s.Values) - 1; i >= 0; i-- {
		if math.Abs(s.Values[i]-target) > eps {
			last = i
			break
		}
	}
	if last == len(s.Values)-1 {
		return 0, false
	}
	return last + 1, true
}

// MaxAbsDelta returns the largest |v[t] - v[t-1]|, the per-round change
// plotted in Fig. 10's fourth panel. Zero for series shorter than 2.
func (s *Series) MaxAbsDelta() float64 {
	worst := 0.0
	for i := 1; i < len(s.Values); i++ {
		if d := math.Abs(s.Values[i] - s.Values[i-1]); d > worst {
			worst = d
		}
	}
	return worst
}

// Deltas returns the per-round absolute changes (length Len()-1).
func (s *Series) Deltas() []float64 {
	if len(s.Values) < 2 {
		return nil
	}
	out := make([]float64, len(s.Values)-1)
	for i := 1; i < len(s.Values); i++ {
		out[i-1] = math.Abs(s.Values[i] - s.Values[i-1])
	}
	return out
}

// Summary holds basic statistics of a sample.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	Median         float64
	P25, P75       float64
	CoeffVariation float64 // Std / Mean; 0 when Mean == 0
}

// Summarize computes summary statistics. It returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, v := range xs {
		s.Mean += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean /= float64(len(xs))
	for _, v := range xs {
		s.Std += (v - s.Mean) * (v - s.Mean)
	}
	s.Std = math.Sqrt(s.Std / float64(len(xs)))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P25 = Quantile(sorted, 0.25)
	s.P75 = Quantile(sorted, 0.75)
	if s.Mean != 0 {
		s.CoeffVariation = s.Std / s.Mean
	}
	return s
}

// Quantile returns the q-quantile of an ascending-sorted slice by linear
// interpolation.
func Quantile(sorted []float64, q float64) float64 {
	switch len(sorted) {
	case 0:
		return 0
	case 1:
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram buckets xs into n equal-width bins over [min, max] and returns
// the counts. Returns nil for empty input or n < 1.
func Histogram(xs []float64, n int) []int {
	if len(xs) == 0 || n < 1 {
		return nil
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range xs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	counts := make([]int, n)
	if hi == lo {
		counts[0] = len(xs)
		return counts
	}
	for _, v := range xs {
		b := int(float64(n) * (v - lo) / (hi - lo))
		if b >= n {
			b = n - 1
		}
		counts[b]++
	}
	return counts
}

// ApproximationRatio returns achieved/bound, the quantity the paper reports
// as "approximation ratios in [1.00, 1.15]". A zero bound with a zero
// achieved value is 1; a zero bound otherwise is +Inf.
func ApproximationRatio(achieved, bound int) float64 {
	if bound == 0 {
		if achieved == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(achieved) / float64(bound)
}

// FormatFloat renders a float compactly for table output.
func FormatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "nan"
	case math.Abs(v) >= 1000 || (v != 0 && math.Abs(v) < 0.001):
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}
