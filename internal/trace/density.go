package trace

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

// Traffic density (TD), Eq. (3) of the paper:
//
//	TD_i = (# of vehicles traveling through u_i during [t_s, t_e]) / (t_e - t_s)
//
// The paper counts TD per road segment in 10-minute windows and averages over
// one day to obtain each segment's utility coefficient.

// MatchToNetwork assigns every fix to its nearest road segment and returns a
// new set with the Segment field populated. Fixes farther than maxMeters
// from any segment midpoint keep Segment = -1. Fixes are matched on all CPUs;
// use MatchToNetworkWorkers to bound the pool.
func MatchToNetwork(s *Set, net *roadnet.Network, box geo.BBox, maxMeters float64) (*Set, error) {
	return MatchToNetworkWorkers(s, net, box, maxMeters, 0)
}

// MatchToNetworkWorkers is MatchToNetwork with an explicit worker-pool size
// (0 means runtime.NumCPU()). Each fix is matched independently into its
// original slot, so the output is identical for every worker count.
func MatchToNetworkWorkers(s *Set, net *roadnet.Network, box geo.BBox, maxMeters float64, workers int) (*Set, error) {
	if net.NumSegments() == 0 {
		return nil, fmt.Errorf("trace: cannot match against an empty network")
	}
	idx, err := geo.NewGridIndex(box, 64, 64, net.Midpoints())
	if err != nil {
		return nil, fmt.Errorf("trace: building match index: %w", err)
	}
	src := s.Fixes() // settles sort order before the workers share the slice
	matched := make([]Fix, len(src))
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(src) {
		workers = len(src)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		lo := wk * len(src) / workers
		hi := (wk + 1) * len(src) / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f := src[i]
				seg, d := idx.Nearest(f.Position)
				if maxMeters > 0 && d > maxMeters {
					f.Segment = -1
				} else {
					f.Segment = seg
				}
				matched[i] = f
			}
		}(lo, hi)
	}
	wg.Wait()

	out := NewSet()
	for id, kind := range s.kinds {
		out.AddVehicle(id, kind)
	}
	// The input slice was (Time, Vehicle)-sorted and matching preserves
	// order, so the result can be installed directly without re-sorting.
	out.fixes = matched
	out.dirty = false
	return out, nil
}

// DensityWindow counts, per segment, the number of distinct vehicles whose
// fixes land on the segment during [start, end), divided by the window
// length in minutes — Eq. (3) with the paper's per-10-minute unit. The set's
// fixes must be map-matched (Segment >= 0 for counted fixes).
func DensityWindow(s *Set, numSegments int, start, end time.Time) ([]float64, error) {
	if !end.After(start) {
		return nil, fmt.Errorf("trace: density window [%v, %v) is empty", start, end)
	}
	minutes := end.Sub(start).Minutes()
	seen := make(map[int64]struct{})
	counts := make([]float64, numSegments)
	for _, f := range s.Window(start, end) {
		if f.Segment < 0 || f.Segment >= numSegments {
			continue
		}
		key := int64(f.Vehicle)<<24 | int64(f.Segment)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		counts[f.Segment]++
	}
	for i := range counts {
		counts[i] /= minutes
	}
	return counts, nil
}

// AverageDensity computes the per-segment TD averaged over consecutive
// windows of the given size spanning the whole trace — the paper's "average
// value of TD over one day" used as the TD utility coefficient. Windows are
// counted on all CPUs; use AverageDensityWorkers to bound the pool.
func AverageDensity(s *Set, numSegments int, window time.Duration) ([]float64, error) {
	return AverageDensityWorkers(s, numSegments, window, 0)
}

// AverageDensityWorkers is AverageDensity with an explicit worker-pool size
// (0 means runtime.NumCPU()). Windows are counted independently and merged
// in window order, so the output is identical for every worker count.
func AverageDensityWorkers(s *Set, numSegments int, window time.Duration, workers int) ([]float64, error) {
	wins, err := windowDensities(s, numSegments, window, workers)
	if err != nil {
		return nil, err
	}
	sum := make([]float64, numSegments)
	for _, d := range wins {
		for i, v := range d {
			sum[i] += v
		}
	}
	if len(wins) == 0 {
		return sum, nil
	}
	for i := range sum {
		sum[i] /= float64(len(wins))
	}
	return sum, nil
}

// WindowDensities returns one per-segment TD vector per consecutive window
// spanning the trace — the time-resolved view behind AverageDensity, used
// by the Fig. 8 analysis of within-region TD dispersion over time.
func WindowDensities(s *Set, numSegments int, window time.Duration) ([][]float64, error) {
	return windowDensities(s, numSegments, window, 0)
}

// windowDensities computes all consecutive per-window TD vectors on a worker
// pool. Each window writes into its own slot, so the result (and any ordered
// reduction over it) does not depend on the worker count.
func windowDensities(s *Set, numSegments int, window time.Duration, workers int) ([][]float64, error) {
	if window <= 0 {
		return nil, fmt.Errorf("trace: window must be positive, got %v", window)
	}
	start, end, ok := s.TimeSpan()
	if !ok {
		return nil, fmt.Errorf("trace: cannot compute density of an empty trace")
	}
	s.Fixes() // settle sort order before workers share the set
	var starts []time.Time
	for ws := start; ws.Before(end); ws = ws.Add(window) {
		starts = append(starts, ws)
	}
	out := make([][]float64, len(starts))
	errs := make([]error, len(starts))
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(starts) {
		workers = len(starts)
	}
	var next int64
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1) - 1)
				if i >= len(starts) {
					return
				}
				out[i], errs[i] = DensityWindow(s, numSegments, starts[i], starts[i].Add(window))
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// TransitionCounts counts, for every ordered pair of consecutive fixes of
// the same vehicle, a transition between the fixes' segments. The resulting
// map is used to derive inter-region data-sharing frequencies (the gamma
// edge weights in the paper's auxiliary graph). Unmatched fixes are skipped.
func TransitionCounts(s *Set) map[[2]int]int {
	out := make(map[[2]int]int)
	last := make(map[VehicleID]int)
	for _, f := range s.Fixes() {
		if f.Segment < 0 {
			continue
		}
		if prev, ok := last[f.Vehicle]; ok {
			out[[2]int{prev, f.Segment}]++
		}
		last[f.Vehicle] = f.Segment
	}
	return out
}

// SegmentVisitTotals returns, per segment, the total number of fixes landing
// on it across the whole trace (a cheap popularity measure used in reports).
func SegmentVisitTotals(s *Set, numSegments int) []int {
	counts := make([]int, numSegments)
	for _, f := range s.Fixes() {
		if f.Segment >= 0 && f.Segment < numSegments {
			counts[f.Segment]++
		}
	}
	return counts
}
