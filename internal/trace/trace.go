// Package trace provides vehicle GPS traces: the record model, a CSV codec,
// a deterministic synthetic fleet generator standing in for the Shenzhen
// taxi/transit dataset the paper uses, map matching of fixes onto road
// segments, and the traffic-density statistic of Eq. (3).
//
// The paper's dataset [21] contains timestamps, GPS positions and velocities
// of ~28k vehicles (15,610 taxicabs and 12,386 customized transit vehicles).
// The generator reproduces the statistical features the evaluation actually
// consumes — per-segment traffic volume concentrated on fast roads, diurnal
// peaks, and vehicle flows between areas — at a configurable scale.
package trace

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/geo"
)

// VehicleKind distinguishes the two fleets in the Shenzhen dataset.
type VehicleKind int

// Vehicle kinds.
const (
	KindTaxi VehicleKind = iota + 1
	KindTransit
)

// String implements fmt.Stringer.
func (k VehicleKind) String() string {
	switch k {
	case KindTaxi:
		return "taxi"
	case KindTransit:
		return "transit"
	default:
		return fmt.Sprintf("VehicleKind(%d)", int(k))
	}
}

// VehicleID identifies a vehicle within a trace set.
type VehicleID int

// Fix is one GPS report: vehicle, time, position, speed. Fixes are sampled
// every 10 seconds in the paper's setup ("In every 10 seconds, each vehicle
// reports its collected sensor data to the edge server").
type Fix struct {
	Vehicle  VehicleID
	Time     time.Time
	Position geo.Point
	SpeedMPS float64
	// Segment is the road segment the fix was generated on (or matched to);
	// -1 when unknown.
	Segment int
}

// Set is a collection of fixes with vehicle metadata. Fixes are kept sorted
// by (Time, Vehicle).
type Set struct {
	kinds map[VehicleID]VehicleKind
	fixes []Fix
	dirty bool
}

// NewSet returns an empty trace set.
func NewSet() *Set {
	return &Set{kinds: make(map[VehicleID]VehicleKind)}
}

// AddVehicle registers a vehicle with its kind. Re-registering overwrites
// the kind.
func (s *Set) AddVehicle(id VehicleID, kind VehicleKind) {
	s.kinds[id] = kind
}

// Kind returns the registered kind of a vehicle, or 0 if unknown.
func (s *Set) Kind(id VehicleID) VehicleKind { return s.kinds[id] }

// NumVehicles returns the number of registered vehicles.
func (s *Set) NumVehicles() int { return len(s.kinds) }

// VehicleIDs returns the registered vehicle ids in ascending order.
func (s *Set) VehicleIDs() []VehicleID {
	out := make([]VehicleID, 0, len(s.kinds))
	for id := range s.kinds {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Append adds a fix. The fix's vehicle must already be registered.
func (s *Set) Append(f Fix) error {
	if _, ok := s.kinds[f.Vehicle]; !ok {
		return fmt.Errorf("trace: fix references unregistered vehicle %d", f.Vehicle)
	}
	if !f.Position.Valid() {
		return fmt.Errorf("trace: fix for vehicle %d has invalid position %v", f.Vehicle, f.Position)
	}
	if f.SpeedMPS < 0 {
		return fmt.Errorf("trace: fix for vehicle %d has negative speed %f", f.Vehicle, f.SpeedMPS)
	}
	s.fixes = append(s.fixes, f)
	s.dirty = true
	return nil
}

// NumFixes returns the number of fixes.
func (s *Set) NumFixes() int { return len(s.fixes) }

// Fixes returns all fixes sorted by (Time, Vehicle). The returned slice is
// owned by the Set and must not be modified.
func (s *Set) Fixes() []Fix {
	s.ensureSorted()
	return s.fixes
}

func (s *Set) ensureSorted() {
	if !s.dirty {
		return
	}
	sort.SliceStable(s.fixes, func(i, j int) bool {
		if !s.fixes[i].Time.Equal(s.fixes[j].Time) {
			return s.fixes[i].Time.Before(s.fixes[j].Time)
		}
		return s.fixes[i].Vehicle < s.fixes[j].Vehicle
	})
	s.dirty = false
}

// TimeSpan returns the earliest and latest fix times. ok is false for an
// empty set.
func (s *Set) TimeSpan() (start, end time.Time, ok bool) {
	if len(s.fixes) == 0 {
		return time.Time{}, time.Time{}, false
	}
	s.ensureSorted()
	return s.fixes[0].Time, s.fixes[len(s.fixes)-1].Time, true
}

// ByVehicle returns the fixes of one vehicle in time order.
func (s *Set) ByVehicle(id VehicleID) []Fix {
	s.ensureSorted()
	var out []Fix
	for _, f := range s.fixes {
		if f.Vehicle == id {
			out = append(out, f)
		}
	}
	return out
}

// Window returns the fixes with Time in [start, end).
func (s *Set) Window(start, end time.Time) []Fix {
	s.ensureSorted()
	lo := sort.Search(len(s.fixes), func(i int) bool { return !s.fixes[i].Time.Before(start) })
	hi := sort.Search(len(s.fixes), func(i int) bool { return !s.fixes[i].Time.Before(end) })
	return s.fixes[lo:hi]
}

// KindCounts returns the number of registered vehicles of each kind.
func (s *Set) KindCounts() (taxis, transit int) {
	for _, k := range s.kinds {
		switch k {
		case KindTaxi:
			taxis++
		case KindTransit:
			transit++
		}
	}
	return taxis, transit
}
