package trace

import (
	"testing"

	"repro/internal/geo"
)

// TestGenerateWorkerCountInvariance: the generator must emit the identical
// fleet for every worker count — each vehicle draws from its own seeded RNG
// substream, so scheduling cannot leak into the output.
func TestGenerateWorkerCountInvariance(t *testing.T) {
	net := genTestNetwork(t)
	ref := func() *Set {
		cfg := smallTraceConfig()
		cfg.Workers = 1
		s, err := Generate(net, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}()
	for _, workers := range []int{2, 5, 0} {
		cfg := smallTraceConfig()
		cfg.Workers = workers
		got, err := Generate(net, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fa, fb := ref.Fixes(), got.Fixes()
		if len(fa) != len(fb) {
			t.Fatalf("workers=%d: fix counts differ: %d vs %d", workers, len(fa), len(fb))
		}
		for i := range fa {
			if fa[i] != fb[i] {
				t.Fatalf("workers=%d: fix %d differs: %+v vs %+v", workers, i, fa[i], fb[i])
			}
		}
	}
}

// TestMatchToNetworkWorkerCountInvariance: per-fix matching is pure, so any
// pool size must produce the same matched set.
func TestMatchToNetworkWorkerCountInvariance(t *testing.T) {
	net := genTestNetwork(t)
	s, err := Generate(net, smallTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := MatchToNetworkWorkers(s, net, geo.FutianBBox(), 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{3, 0} {
		got, err := MatchToNetworkWorkers(s, net, geo.FutianBBox(), 500, workers)
		if err != nil {
			t.Fatal(err)
		}
		fa, fb := ref.Fixes(), got.Fixes()
		if len(fa) != len(fb) {
			t.Fatalf("workers=%d: fix counts differ", workers)
		}
		for i := range fa {
			if fa[i] != fb[i] {
				t.Fatalf("workers=%d: fix %d differs: %+v vs %+v", workers, i, fa[i], fb[i])
			}
		}
	}
}

// TestAverageDensityWorkerCountInvariance: windows merge in window order, so
// the TD coefficients are bit-identical for every pool size.
func TestAverageDensityWorkerCountInvariance(t *testing.T) {
	net := genTestNetwork(t)
	s, err := Generate(net, smallTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	matched, err := MatchToNetwork(s, net, geo.FutianBBox(), 500)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := AverageDensityWorkers(matched, net.NumSegments(), 10*60e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 0} {
		got, err := AverageDensityWorkers(matched, net.NumSegments(), 10*60e9, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: density[%d] = %v, want %v (bit-exact)", workers, i, got[i], ref[i])
			}
		}
	}
}
