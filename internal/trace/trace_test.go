package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

func t0() time.Time { return time.Date(2022, 3, 14, 0, 0, 0, 0, time.UTC) }

func mkFix(v int, offset time.Duration, lat, lon float64) Fix {
	return Fix{
		Vehicle:  VehicleID(v),
		Time:     t0().Add(offset),
		Position: geo.Point{Lat: lat, Lon: lon},
		SpeedMPS: 5,
		Segment:  -1,
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet()
	s.AddVehicle(1, KindTaxi)
	s.AddVehicle(2, KindTransit)
	if s.NumVehicles() != 2 {
		t.Fatalf("NumVehicles = %d, want 2", s.NumVehicles())
	}
	if s.Kind(1) != KindTaxi || s.Kind(2) != KindTransit {
		t.Error("kinds not registered")
	}
	if s.Kind(99) != 0 {
		t.Error("unknown vehicle should have zero kind")
	}
	taxis, transit := s.KindCounts()
	if taxis != 1 || transit != 1 {
		t.Errorf("KindCounts = %d,%d want 1,1", taxis, transit)
	}
	ids := s.VehicleIDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Errorf("VehicleIDs = %v", ids)
	}
}

func TestSetAppendValidation(t *testing.T) {
	s := NewSet()
	s.AddVehicle(1, KindTaxi)
	if err := s.Append(mkFix(9, 0, 22.5, 114.0)); err == nil {
		t.Error("unregistered vehicle must be rejected")
	}
	bad := mkFix(1, 0, 95.0, 114.0)
	if err := s.Append(bad); err == nil {
		t.Error("invalid position must be rejected")
	}
	neg := mkFix(1, 0, 22.5, 114.0)
	neg.SpeedMPS = -1
	if err := s.Append(neg); err == nil {
		t.Error("negative speed must be rejected")
	}
	if err := s.Append(mkFix(1, 0, 22.5, 114.0)); err != nil {
		t.Errorf("valid fix rejected: %v", err)
	}
}

func TestSetSortingAndWindow(t *testing.T) {
	s := NewSet()
	s.AddVehicle(1, KindTaxi)
	s.AddVehicle(2, KindTaxi)
	// Append out of order.
	for _, f := range []Fix{
		mkFix(2, 30*time.Second, 22.5, 114.0),
		mkFix(1, 10*time.Second, 22.5, 114.0),
		mkFix(2, 10*time.Second, 22.5, 114.0),
		mkFix(1, 0, 22.5, 114.0),
	} {
		if err := s.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	fixes := s.Fixes()
	for i := 1; i < len(fixes); i++ {
		if fixes[i].Time.Before(fixes[i-1].Time) {
			t.Fatal("fixes not time-sorted")
		}
		if fixes[i].Time.Equal(fixes[i-1].Time) && fixes[i].Vehicle < fixes[i-1].Vehicle {
			t.Fatal("ties not vehicle-sorted")
		}
	}
	start, end, ok := s.TimeSpan()
	if !ok || !start.Equal(t0()) || !end.Equal(t0().Add(30*time.Second)) {
		t.Errorf("TimeSpan = %v %v %v", start, end, ok)
	}
	win := s.Window(t0().Add(5*time.Second), t0().Add(30*time.Second))
	if len(win) != 2 {
		t.Errorf("Window returned %d fixes, want 2", len(win))
	}
	if got := s.ByVehicle(1); len(got) != 2 {
		t.Errorf("ByVehicle(1) = %d fixes, want 2", len(got))
	}
}

func TestEmptySetTimeSpan(t *testing.T) {
	s := NewSet()
	if _, _, ok := s.TimeSpan(); ok {
		t.Error("empty set should report no time span")
	}
}

func TestVehicleKindString(t *testing.T) {
	if KindTaxi.String() != "taxi" || KindTransit.String() != "transit" {
		t.Error("kind strings wrong")
	}
	if !strings.Contains(VehicleKind(9).String(), "9") {
		t.Error("unknown kind should include numeric value")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := NewSet()
	s.AddVehicle(7, KindTaxi)
	s.AddVehicle(8, KindTransit)
	for i := 0; i < 5; i++ {
		f := mkFix(7, time.Duration(i)*10*time.Second, 22.51+float64(i)*0.001, 114.02)
		f.Segment = i
		if err := s.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append(mkFix(8, 0, 22.55, 114.05)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumFixes() != s.NumFixes() {
		t.Fatalf("round trip: %d fixes, want %d", got.NumFixes(), s.NumFixes())
	}
	if got.Kind(7) != KindTaxi || got.Kind(8) != KindTransit {
		t.Error("kinds lost in round trip")
	}
	a, b := s.Fixes(), got.Fixes()
	for i := range a {
		if !a[i].Time.Equal(b[i].Time) || a[i].Vehicle != b[i].Vehicle || a[i].Segment != b[i].Segment {
			t.Fatalf("fix %d mismatch: %+v vs %+v", i, a[i], b[i])
		}
		if geo.Equirectangular(a[i].Position, b[i].Position) > 0.02 {
			t.Fatalf("fix %d position drifted", i)
		}
	}
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	header := "vehicle_id,kind,timestamp,lat,lon,speed_mps,segment\n"
	tests := []struct {
		name string
		row  string
	}{
		{"bad id", "x,1,2022-03-14T00:00:00Z,22.5,114.0,5.0,0\n"},
		{"bad kind", "1,x,2022-03-14T00:00:00Z,22.5,114.0,5.0,0\n"},
		{"bad time", "1,1,notatime,22.5,114.0,5.0,0\n"},
		{"bad lat", "1,1,2022-03-14T00:00:00Z,x,114.0,5.0,0\n"},
		{"bad lon", "1,1,2022-03-14T00:00:00Z,22.5,x,5.0,0\n"},
		{"bad speed", "1,1,2022-03-14T00:00:00Z,22.5,114.0,x,0\n"},
		{"bad segment", "1,1,2022-03-14T00:00:00Z,22.5,114.0,5.0,x\n"},
		{"invalid position", "1,1,2022-03-14T00:00:00Z,99.5,114.0,5.0,0\n"},
		{"wrong field count", "1,1\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(header + tt.row)); err == nil {
				t.Errorf("ReadCSV should reject %q", tt.row)
			}
		})
	}
}

func TestDemandFactorShape(t *testing.T) {
	day := t0()
	at := func(h int) float64 { return DemandFactor(day.Add(time.Duration(h) * time.Hour)) }
	if at(8) <= at(3) {
		t.Errorf("morning peak %f must exceed night trough %f", at(8), at(3))
	}
	if at(18) <= at(3) {
		t.Errorf("evening peak %f must exceed night trough %f", at(18), at(3))
	}
	for h := 0; h < 24; h++ {
		f := at(h)
		if f <= 0 || f > 1 {
			t.Fatalf("DemandFactor(%dh) = %f out of (0,1]", h, f)
		}
	}
}

func genTestNetwork(t *testing.T) *roadnet.Network {
	t.Helper()
	cfg := roadnet.DefaultGenConfig()
	cfg.Rows, cfg.Cols = 8, 9
	net, err := roadnet.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func smallTraceConfig() GenConfig {
	cfg := DefaultGenConfig()
	cfg.Taxis, cfg.Transit = 12, 8
	cfg.Duration = 2 * time.Hour
	return cfg
}

func TestGenerateTrace(t *testing.T) {
	net := genTestNetwork(t)
	s, err := Generate(net, smallTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVehicles() != 20 {
		t.Fatalf("NumVehicles = %d, want 20", s.NumVehicles())
	}
	taxis, transit := s.KindCounts()
	if taxis != 12 || transit != 8 {
		t.Errorf("KindCounts = %d,%d want 12,8", taxis, transit)
	}
	wantFixes := 20 * int(2*time.Hour/(10*time.Second))
	if s.NumFixes() != wantFixes {
		t.Errorf("NumFixes = %d, want %d", s.NumFixes(), wantFixes)
	}
	for _, f := range s.Fixes() {
		if f.Segment < 0 || f.Segment >= net.NumSegments() {
			t.Fatalf("generated fix has out-of-range segment %d", f.Segment)
		}
		if f.SpeedMPS < 0 {
			t.Fatalf("negative speed %f", f.SpeedMPS)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	net := genTestNetwork(t)
	a, err := Generate(net, smallTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(net, smallTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := a.Fixes(), b.Fixes()
	if len(fa) != len(fb) {
		t.Fatalf("fix counts differ: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("fix %d differs: %+v vs %+v", i, fa[i], fb[i])
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	net := genTestNetwork(t)
	tests := []struct {
		name   string
		mutate func(*GenConfig)
	}{
		{"empty fleet", func(c *GenConfig) { c.Taxis, c.Transit = 0, 0 }},
		{"negative fleet", func(c *GenConfig) { c.Taxis = -1 }},
		{"zero duration", func(c *GenConfig) { c.Duration = 0 }},
		{"zero interval", func(c *GenConfig) { c.SampleInterval = 0 }},
		{"interval > duration", func(c *GenConfig) { c.SampleInterval = 3 * time.Hour }},
		{"negative jitter", func(c *GenConfig) { c.SpeedJitter = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := smallTraceConfig()
			tt.mutate(&cfg)
			if _, err := Generate(net, cfg); err == nil {
				t.Error("want validation error")
			}
		})
	}
	if _, err := Generate(&roadnet.Network{}, smallTraceConfig()); err == nil {
		t.Error("empty network must be rejected")
	}
}

func TestGenerateArterialsAttractTraffic(t *testing.T) {
	net := genTestNetwork(t)
	cfg := smallTraceConfig()
	cfg.Taxis, cfg.Transit = 40, 0
	cfg.Duration = 3 * time.Hour
	cfg.Start = cfg.Start.Add(8 * time.Hour) // start in the morning peak
	s, err := Generate(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	visits := SegmentVisitTotals(s, net.NumSegments())
	perClass := map[roadnet.RoadClass][2]float64{} // sum, count
	for _, seg := range net.Segments() {
		e := perClass[seg.Class]
		e[0] += float64(visits[seg.ID])
		e[1]++
		perClass[seg.Class] = e
	}
	art := perClass[roadnet.ClassArterial]
	loc := perClass[roadnet.ClassLocal]
	if art[1] == 0 || loc[1] == 0 {
		t.Fatal("need both arterials and locals")
	}
	if art[0]/art[1] <= loc[0]/loc[1] {
		t.Errorf("mean arterial visits %.1f should exceed mean local visits %.1f",
			art[0]/art[1], loc[0]/loc[1])
	}
}

func TestMatchToNetwork(t *testing.T) {
	net := genTestNetwork(t)
	cfg := smallTraceConfig()
	s, err := Generate(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	matched, err := MatchToNetwork(s, net, geo.FutianBBox(), 500)
	if err != nil {
		t.Fatal(err)
	}
	if matched.NumFixes() != s.NumFixes() {
		t.Fatalf("matching changed fix count: %d vs %d", matched.NumFixes(), s.NumFixes())
	}
	// With small GPS jitter the matched segment should usually equal the
	// generating segment.
	agree, total := 0, 0
	orig := s.Fixes()
	m := matched.Fixes()
	for i := range orig {
		total++
		if orig[i].Segment == m[i].Segment {
			agree++
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.6 {
		t.Errorf("only %.0f%% of fixes matched back to their generating segment", frac*100)
	}
}

func TestMatchToNetworkFarFixUnmatched(t *testing.T) {
	net := genTestNetwork(t)
	s := NewSet()
	s.AddVehicle(1, KindTaxi)
	// A fix far outside the box (but valid lat/lon).
	far := mkFix(1, 0, 23.40, 114.05)
	if err := s.Append(far); err != nil {
		t.Fatal(err)
	}
	matched, err := MatchToNetwork(s, net, geo.FutianBBox(), 500)
	if err != nil {
		t.Fatal(err)
	}
	if got := matched.Fixes()[0].Segment; got != -1 {
		t.Errorf("far fix matched to segment %d, want -1", got)
	}
}

func TestDensityWindow(t *testing.T) {
	s := NewSet()
	s.AddVehicle(1, KindTaxi)
	s.AddVehicle(2, KindTaxi)
	add := func(v int, minute int, seg int) {
		f := mkFix(v, time.Duration(minute)*time.Minute, 22.5, 114.0)
		f.Segment = seg
		if err := s.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	// Vehicle 1 visits segment 0 three times within the window (counted
	// once) and vehicle 2 once; segment 1 gets vehicle 2 only.
	add(1, 0, 0)
	add(1, 2, 0)
	add(1, 4, 0)
	add(2, 5, 0)
	add(2, 6, 1)
	add(1, 15, 0) // outside the window

	d, err := DensityWindow(s, 3, t0(), t0().Add(10*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 2.0/10 {
		t.Errorf("TD[0] = %f, want 0.2 (2 vehicles / 10 min)", d[0])
	}
	if d[1] != 1.0/10 {
		t.Errorf("TD[1] = %f, want 0.1", d[1])
	}
	if d[2] != 0 {
		t.Errorf("TD[2] = %f, want 0", d[2])
	}
	if _, err := DensityWindow(s, 3, t0(), t0()); err == nil {
		t.Error("empty window must error")
	}
}

func TestAverageDensity(t *testing.T) {
	net := genTestNetwork(t)
	cfg := smallTraceConfig()
	s, err := Generate(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	avg, err := AverageDensity(s, net.NumSegments(), 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(avg) != net.NumSegments() {
		t.Fatalf("got %d densities, want %d", len(avg), net.NumSegments())
	}
	total := 0.0
	for _, v := range avg {
		if v < 0 {
			t.Fatal("negative density")
		}
		total += v
	}
	if total == 0 {
		t.Error("all densities zero; generator produced no movement")
	}
	if _, err := AverageDensity(s, net.NumSegments(), 0); err == nil {
		t.Error("zero window must error")
	}
	if _, err := AverageDensity(NewSet(), 3, time.Minute); err == nil {
		t.Error("empty trace must error")
	}
}

func TestTransitionCounts(t *testing.T) {
	s := NewSet()
	s.AddVehicle(1, KindTaxi)
	add := func(minute, seg int) {
		f := mkFix(1, time.Duration(minute)*time.Minute, 22.5, 114.0)
		f.Segment = seg
		if err := s.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	add(0, 0)
	add(1, 1)
	add(2, 1)
	add(3, 0)
	tc := TransitionCounts(s)
	if tc[[2]int{0, 1}] != 1 || tc[[2]int{1, 1}] != 1 || tc[[2]int{1, 0}] != 1 {
		t.Errorf("TransitionCounts = %v", tc)
	}
}
