package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/geo"
)

// CSV layout (one fix per row, RFC 3339 timestamps):
//
//	vehicle_id,kind,timestamp,lat,lon,speed_mps,segment
//
// A header row is written and tolerated on read. This mirrors the shape of
// the Shenzhen dataset exports (id, timestamp, GPS position, velocity) with
// an extra segment column for map-matched traces.

var csvHeader = []string{"vehicle_id", "kind", "timestamp", "lat", "lon", "speed_mps", "segment"}

// WriteCSV serializes the set to w.
func WriteCSV(w io.Writer, s *Set) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: writing CSV header: %w", err)
	}
	row := make([]string, len(csvHeader))
	for _, f := range s.Fixes() {
		row[0] = strconv.Itoa(int(f.Vehicle))
		row[1] = strconv.Itoa(int(s.Kind(f.Vehicle)))
		row[2] = f.Time.UTC().Format(time.RFC3339)
		row[3] = strconv.FormatFloat(f.Position.Lat, 'f', 7, 64)
		row[4] = strconv.FormatFloat(f.Position.Lon, 'f', 7, 64)
		row[5] = strconv.FormatFloat(f.SpeedMPS, 'f', 2, 64)
		row[6] = strconv.Itoa(f.Segment)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: flushing CSV: %w", err)
	}
	return nil
}

// ReadCSV parses a trace set from r.
func ReadCSV(r io.Reader) (*Set, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	s := NewSet()
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading CSV: %w", err)
		}
		line++
		if line == 1 && rec[0] == csvHeader[0] {
			continue // header
		}
		vid, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad vehicle id %q: %w", line, rec[0], err)
		}
		kind, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad kind %q: %w", line, rec[1], err)
		}
		ts, err := time.Parse(time.RFC3339, rec[2])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad timestamp %q: %w", line, rec[2], err)
		}
		lat, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad latitude %q: %w", line, rec[3], err)
		}
		lon, err := strconv.ParseFloat(rec[4], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad longitude %q: %w", line, rec[4], err)
		}
		speed, err := strconv.ParseFloat(rec[5], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad speed %q: %w", line, rec[5], err)
		}
		seg, err := strconv.Atoi(rec[6])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad segment %q: %w", line, rec[6], err)
		}
		s.AddVehicle(VehicleID(vid), VehicleKind(kind))
		if err := s.Append(Fix{
			Vehicle:  VehicleID(vid),
			Time:     ts,
			Position: geo.Point{Lat: lat, Lon: lon},
			SpeedMPS: speed,
			Segment:  seg,
		}); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
	}
	return s, nil
}
