package trace

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

// GenConfig parameterizes the synthetic fleet generator. See the package
// comment and DESIGN.md §1 for the substitution rationale.
type GenConfig struct {
	// Taxis and Transit are the fleet sizes. The paper's dataset has 15,610
	// taxis and 12,386 transit vehicles; default reproduction runs use a
	// 1:40 scale (390 + 310) to stay laptop-sized while preserving density
	// ratios.
	Taxis, Transit int
	// Start is the beginning of the generated day.
	Start time.Time
	// Duration of the generated trace (default one day, as the paper
	// averages TD over one day).
	Duration time.Duration
	// SampleInterval between fixes (paper: 10 s).
	SampleInterval time.Duration
	// Seed drives all randomness.
	Seed int64
	// SpeedJitter is the relative standard deviation of speed noise.
	SpeedJitter float64
	// GPSJitterMeters is the standard deviation of position noise.
	GPSJitterMeters float64
	// Workers bounds the goroutine pool generating vehicles in parallel
	// (0 means runtime.NumCPU()). Workers never affects the output: every
	// vehicle draws from its own RNG substream derived from Seed, so any
	// worker count produces the identical trace. The field is therefore
	// excluded from world-build cache keys.
	Workers int
}

// DefaultGenConfig returns the laptop-scale defaults used in tests and the
// experiment harness.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Taxis:           390,
		Transit:         310,
		Start:           time.Date(2022, 3, 14, 0, 0, 0, 0, time.UTC),
		Duration:        24 * time.Hour,
		SampleInterval:  10 * time.Second,
		Seed:            1,
		SpeedJitter:     0.15,
		GPSJitterMeters: 8,
	}
}

// Validate checks the configuration.
func (c GenConfig) Validate() error {
	if c.Taxis < 0 || c.Transit < 0 || c.Taxis+c.Transit == 0 {
		return fmt.Errorf("trace: fleet sizes must be non-negative and total > 0, got %d+%d", c.Taxis, c.Transit)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("trace: duration must be positive, got %v", c.Duration)
	}
	if c.SampleInterval <= 0 {
		return fmt.Errorf("trace: sample interval must be positive, got %v", c.SampleInterval)
	}
	if c.SampleInterval > c.Duration {
		return fmt.Errorf("trace: sample interval %v exceeds duration %v", c.SampleInterval, c.Duration)
	}
	if c.SpeedJitter < 0 || c.GPSJitterMeters < 0 {
		return fmt.Errorf("trace: jitter parameters must be non-negative")
	}
	return nil
}

// DemandFactor returns the diurnal demand multiplier in (0, 1] for a time of
// day: morning (8-9h) and evening (18-19h) peaks, a midday shoulder, and a
// deep night trough. Exported so TD-based experiments can reason about the
// demand curve.
func DemandFactor(t time.Time) float64 {
	h := float64(t.Hour()) + float64(t.Minute())/60
	peak := func(center, width float64) float64 {
		d := (h - center) / width
		return math.Exp(-d * d / 2)
	}
	f := 0.15 + 0.85*math.Max(peak(8.5, 1.5), peak(18.5, 1.7)) + 0.35*peak(13, 2.5)
	if f > 1 {
		f = 1
	}
	return f
}

// substreamSeed derives the RNG seed of one vehicle's substream from the
// master seed with a SplitMix64 mix. Independent, well-distributed substreams
// make per-vehicle generation order-free: vehicles can be generated on any
// worker in any order and still reproduce the exact same fleet.
func substreamSeed(seed int64, stream int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Generate produces a trace set over the given road network. Vehicles run
// trips between origin/destination segments sampled with a bias toward
// high-centrality roads (mimicking real demand concentration); between trips
// they idle with probability governed by the diurnal demand curve. Routes
// follow minimum-hop paths on the segment graph; positions advance along the
// route at the segment design speed with noise.
//
// Vehicles are generated concurrently on cfg.Workers goroutines, each vehicle
// from its own seeded RNG substream, so the output is identical for every
// worker count.
func Generate(net *roadnet.Network, cfg GenConfig) (*Set, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if net.NumSegments() == 0 {
		return nil, fmt.Errorf("trace: cannot generate over an empty network")
	}

	// Demand weights: arterials attract the most trip endpoints. Weight by
	// class, approximating the BC-skewed endpoint distribution of real taxi
	// demand without paying for a full BC computation here. Shared read-only
	// across workers.
	weights := make([]float64, net.NumSegments())
	total := 0.0
	for i, s := range net.Segments() {
		w := 1.0
		switch s.Class {
		case roadnet.ClassArterial:
			w = 6.0
		case roadnet.ClassCollector:
			w = 2.5
		}
		weights[i] = w
		total += w
	}

	nVehicles := cfg.Taxis + cfg.Transit
	steps := int(cfg.Duration / cfg.SampleInterval)
	dt := cfg.SampleInterval.Seconds()

	perVehicle := make([][]Fix, nVehicles)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > nVehicles {
		workers = nVehicles
	}
	var next int64
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v := int(atomic.AddInt64(&next, 1) - 1)
				if v >= nVehicles {
					return
				}
				perVehicle[v] = generateVehicle(net, cfg, v, steps, dt, weights, total)
			}
		}()
	}
	wg.Wait()

	s := NewSet()
	for v := 0; v < nVehicles; v++ {
		kind := KindTaxi
		if v >= cfg.Taxis {
			kind = KindTransit
		}
		s.AddVehicle(VehicleID(v), kind)
		for _, f := range perVehicle[v] {
			if err := s.Append(f); err != nil {
				return nil, fmt.Errorf("trace: generating vehicle %d: %w", v, err)
			}
		}
	}
	return s, nil
}

// generateVehicle produces one vehicle's fixes from its own RNG substream.
func generateVehicle(net *roadnet.Network, cfg GenConfig, v, steps int, dt float64, weights []float64, total float64) []Fix {
	rng := rand.New(rand.NewSource(substreamSeed(cfg.Seed, v)))
	sampleSegment := func() roadnet.SegmentID {
		x := rng.Float64() * total
		for i, w := range weights {
			x -= w
			if x <= 0 {
				return roadnet.SegmentID(i)
			}
		}
		return roadnet.SegmentID(net.NumSegments() - 1)
	}

	id := VehicleID(v)
	kind := KindTaxi
	if v >= cfg.Taxis {
		kind = KindTransit
	}
	w := &walker{
		net:  net,
		rng:  rng,
		kind: kind,
		at:   sampleSegment(),
	}
	// Transit vehicles follow a fixed loop between two anchors; taxis
	// roam between random OD pairs.
	if kind == KindTransit {
		w.anchorA = w.at
		w.anchorB = sampleSegment()
	}

	fixes := make([]Fix, 0, steps)
	for step := 0; step < steps; step++ {
		now := cfg.Start.Add(time.Duration(step) * cfg.SampleInterval)
		moving := w.advance(dt, now, sampleSegment)
		seg := net.Segment(w.at)
		pos := seg.Midpoint
		if cfg.GPSJitterMeters > 0 {
			pos = jitterPosition(rng, pos, cfg.GPSJitterMeters)
		}
		speed := 0.0
		if moving {
			speed = roadnet.SpeedMPS(seg.Class) * (1 + rng.NormFloat64()*cfg.SpeedJitter)
			if speed < 0 {
				speed = 0
			}
		}
		fixes = append(fixes, Fix{
			Vehicle:  id,
			Time:     now,
			Position: pos,
			SpeedMPS: speed,
			Segment:  int(w.at),
		})
	}
	return fixes
}

// walker is a single vehicle's route-following state.
type walker struct {
	net     *roadnet.Network
	rng     *rand.Rand
	kind    VehicleKind
	at      roadnet.SegmentID
	route   []roadnet.SegmentID // remaining segments, route[0] == at
	remain  float64             // seconds left on the current segment
	idle    float64             // seconds left idling (no trip)
	anchorA roadnet.SegmentID   // transit loop endpoints
	anchorB roadnet.SegmentID
}

// advance moves the walker forward by dt seconds and reports whether the
// vehicle was moving.
func (w *walker) advance(dt float64, now time.Time, sampleSegment func() roadnet.SegmentID) bool {
	if w.idle > 0 {
		w.idle -= dt
		return false
	}
	if len(w.route) <= 1 {
		// Need a new trip?
		if w.rng.Float64() > DemandFactor(now) {
			// Idle 1-5 minutes before reconsidering.
			w.idle = 60 + w.rng.Float64()*240
			return false
		}
		w.startTrip(sampleSegment)
		if len(w.route) <= 1 {
			return false
		}
	}
	w.remain -= dt
	for w.remain <= 0 && len(w.route) > 1 {
		w.route = w.route[1:]
		w.at = w.route[0]
		seg := w.net.Segment(w.at)
		w.remain += seg.TravelTimeSeconds()
	}
	return true
}

func (w *walker) startTrip(sampleSegment func() roadnet.SegmentID) {
	var dst roadnet.SegmentID
	if w.kind == KindTransit {
		// Shuttle between anchors.
		if w.at == w.anchorA {
			dst = w.anchorB
		} else {
			dst = w.anchorA
		}
	} else {
		dst = sampleSegment()
	}
	if dst == w.at {
		return
	}
	route := w.net.ShortestPath(w.at, dst)
	if len(route) <= 1 {
		return
	}
	w.route = route
	w.remain = w.net.Segment(w.at).TravelTimeSeconds() * w.rng.Float64()
}

// jitterPosition displaces p by Gaussian noise with the given standard
// deviation in meters.
func jitterPosition(rng *rand.Rand, p geo.Point, sigmaMeters float64) geo.Point {
	const metersPerDegLat = 111_195.0
	dLat := rng.NormFloat64() * sigmaMeters / metersPerDegLat
	dLon := rng.NormFloat64() * sigmaMeters / (metersPerDegLat * math.Cos(p.Lat*math.Pi/180))
	return geo.Point{Lat: p.Lat + dLat, Lon: p.Lon + dLon}
}
