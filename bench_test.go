// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md §4 for the experiment index), plus micro-benchmarks of the
// substrates the experiments lean on. Run with:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkTableN / BenchmarkFigN measures the end-to-end cost of the
// corresponding reproduction; the b.Run sub-benchmarks isolate the hot
// pieces.
package main

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/durable"
	"repro/internal/experiments"
	"repro/internal/game"
	"repro/internal/lattice"
	"repro/internal/optimize"
	"repro/internal/policy"
	"repro/internal/roadnet"
	"repro/internal/sensor"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
	"runtime"
)

// benchWorlds lazily builds the pair of benchmark worlds exactly once across
// all benchmarks in the binary; both are built through one WorldBuilder so
// they share the network/trace/matching artifacts.
var benchWorlds struct {
	once   sync.Once
	bc, td *sim.World
	err    error
}

func benchWorldConfig(src sim.CoeffSource) sim.WorldConfig {
	cfg := sim.DefaultWorldConfig()
	cfg.Net.Rows, cfg.Net.Cols = 12, 14
	cfg.Trace.Taxis, cfg.Trace.Transit = 40, 25
	cfg.Trace.Duration = 3 * time.Hour
	cfg.Regions = 6
	cfg.Source = src
	return cfg
}

func getBenchWorlds(b *testing.B) (*sim.World, *sim.World) {
	b.Helper()
	benchWorlds.once.Do(func() {
		builder := sim.NewWorldBuilder()
		benchWorlds.bc, benchWorlds.err = builder.Build(benchWorldConfig(sim.CoeffBC))
		if benchWorlds.err != nil {
			return
		}
		benchWorlds.td, benchWorlds.err = builder.Build(benchWorldConfig(sim.CoeffTD))
	})
	if benchWorlds.err != nil {
		b.Fatal(benchWorlds.err)
	}
	return benchWorlds.bc, benchWorlds.td
}

// BenchmarkTable2PayoffDerivation regenerates Table II (decision utilities
// and privacy costs) from the Table III capability matrix.
func BenchmarkTable2PayoffDerivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table2()
		if res.MaxUtilityErr != 0 {
			b.Fatal("Table II no longer exact")
		}
	}
}

// BenchmarkTable3Capability regenerates the Table III capability matrix.
func BenchmarkTable3Capability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7DatasetPrep regenerates the Fig. 7 dataset overview (edge
// server cells, BC and TD heat-map summaries) on a prebuilt world.
func BenchmarkFig7DatasetPrep(b *testing.B) {
	bc, _ := getBenchWorlds(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(bc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Clustering regenerates the Fig. 8 clustering analysis
// (Algorithm 1 stats, region graphs, time-resolved TD dispersion).
func BenchmarkFig8Clustering(b *testing.B) {
	bc, td := getBenchWorlds(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(bc, td); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9FDSConvergence regenerates the Fig. 9 convergence-time sweep
// (FDS run + per-eps measurement + lower bounds) for both coefficient
// sources.
func BenchmarkFig9FDSConvergence(b *testing.B) {
	bc, td := getBenchWorlds(b)
	cfg := experiments.Fig9Config{EpsValues: []float64{0.02, 0.05}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(bc, td, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10Trajectories regenerates the Fig. 10 trajectory panels
// (two fixed-ratio baselines, one FDS run, delta series).
func BenchmarkFig10Trajectories(b *testing.B) {
	bc, _ := getBenchWorlds(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(bc, experiments.Fig10Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLowerBoundFeasibility measures the subgradient solver on a
// single-region relaxed problem (Eq. 22) — the expensive exact bound.
func BenchmarkLowerBoundFeasibility(b *testing.B) {
	bc, _ := getBenchWorlds(b)
	opts := sim.MacroOptions{}
	start, err := bc.EquilibriumAt(0.2, opts)
	if err != nil {
		b.Fatal(err)
	}
	target, err := bc.EquilibriumFrom(start, 0.8, 0.1, opts)
	if err != nil {
		b.Fatal(err)
	}
	field, err := sim.FieldFromState(target, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := policy.SubgradientLowerBound(bc.Model, field, start, 0.1, 3,
			optimize.Options{MaxIters: 400}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLambda measures the Lambda design-choice sweep.
func BenchmarkAblationLambda(b *testing.B) {
	bc, _ := getBenchWorlds(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.LambdaAblation(bc, []float64{0.05, 0.2}, sim.MacroOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroMacroAgents measures one agent-based distributed run
// (cloud + edges + vehicle clients over the in-process transport).
func BenchmarkMicroMacroAgents(b *testing.B) {
	bc, _ := getBenchWorlds(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MicroMacro(bc, []int{24}, sim.MacroOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWelfareComparison measures the utility/exposure comparison
// (two fixed baselines + one FDS run + welfare evaluation).
func BenchmarkWelfareComparison(b *testing.B) {
	bc, _ := getBenchWorlds(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.WelfareComparison(bc, experiments.WelfareConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBetaNoiseAblation measures one model-mismatch shaping run.
func BenchmarkBetaNoiseAblation(b *testing.B) {
	bc, _ := getBenchWorlds(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BetaNoise(bc, []float64{0.5}, sim.MacroOptions{MaxRounds: 600}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkBuildWorld measures the full staged world-build pipeline with the
// worker pools pinned to one goroutine (seq) versus all CPUs (par). Each
// iteration uses a fresh builder so nothing is served from the artifact cache.
func BenchmarkBuildWorld(b *testing.B) {
	for _, bench := range []struct {
		name    string
		workers int
	}{
		{"seq", 1},
		{"par", 0}, // 0 = runtime.NumCPU()
	} {
		b.Run(bench.name, func(b *testing.B) {
			cfg := benchWorldConfig(sim.CoeffBC)
			cfg.Workers = bench.workers
			for i := 0; i < b.N; i++ {
				if _, err := sim.BuildWorld(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBetweenness measures travel-time Brandes (the dominant build
// stage) with one worker versus all CPUs on the benchmark network.
func BenchmarkBetweenness(b *testing.B) {
	bc, _ := getBenchWorlds(b)
	for _, bench := range []struct {
		name    string
		workers int
	}{
		{"seq", 1},
		{"par", 0},
	} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = bc.Net.TravelTimeBetweennessWorkers(bench.workers)
			}
		})
	}
}

// BenchmarkBetweennessCentrality measures hop-based Brandes on the
// benchmark network.
func BenchmarkBetweennessCentrality(b *testing.B) {
	bc, _ := getBenchWorlds(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bc.Net.BetweennessCentrality()
	}
}

// BenchmarkWeightedBetweenness measures travel-time Brandes (Dijkstra).
func BenchmarkWeightedBetweenness(b *testing.B) {
	bc, _ := getBenchWorlds(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bc.Net.TravelTimeBetweenness()
	}
}

// BenchmarkTraceGeneration measures the synthetic fleet generator.
func BenchmarkTraceGeneration(b *testing.B) {
	cfg := roadnet.DefaultGenConfig()
	cfg.Rows, cfg.Cols = 12, 14
	net, err := roadnet.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tcfg := trace.DefaultGenConfig()
	tcfg.Taxis, tcfg.Transit = 20, 10
	tcfg.Duration = time.Hour
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Generate(net, tcfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplicatorStep measures one synchronous replicator round across
// all regions.
func BenchmarkReplicatorStep(b *testing.B) {
	bc, _ := getBenchWorlds(b)
	d, err := game.NewDynamics(bc.Model, 1)
	if err != nil {
		b.Fatal(err)
	}
	s := game.NewUniformState(bc.Model.M(), bc.Model.K(), 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Step(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLogitStep measures one smoothed-best-response round.
func BenchmarkLogitStep(b *testing.B) {
	bc, _ := getBenchWorlds(b)
	d, err := game.NewLogitDynamics(bc.Model, 0.15, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	s := game.NewUniformState(bc.Model.M(), bc.Model.K(), 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Step(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFDSUpdate measures one FDS control round (linearization +
// interval solving across all regions and decisions).
func BenchmarkFDSUpdate(b *testing.B) {
	bc, _ := getBenchWorlds(b)
	opts := sim.MacroOptions{}
	start, err := bc.EquilibriumAt(0.3, opts)
	if err != nil {
		b.Fatal(err)
	}
	target, err := bc.EquilibriumFrom(start, 0.8, 0.1, opts)
	if err != nil {
		b.Fatal(err)
	}
	field, err := sim.FieldFromState(target, 0.03)
	if err != nil {
		b.Fatal(err)
	}
	fds, err := policy.NewFDS(bc.Model, field, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	s := start.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fds.UpdateRatios(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPaperLattice measures lattice construction plus the Table II
// payoff derivation path used in hot loops.
func BenchmarkPaperLattice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := lattice.PaperPayoffs()
		if p.K() != 8 {
			b.Fatal("bad lattice")
		}
	}
}

// --- wire protocol benchmarks ---

// benchMessage builds one message of the given kind for codec benchmarks.
func benchMessage(b *testing.B, kind transport.Kind, body interface{}) transport.Message {
	b.Helper()
	m, err := transport.Encode(kind, body)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

var benchCodecs = []struct {
	name  string
	codec transport.Codec
}{
	{"json", transport.JSON},
	{"binary", transport.Binary},
}

// BenchmarkEncodeCensus measures encoding a step-① census frame under each
// codec, reusing the destination buffer the way tcpConn.Send does. The
// bytes/frame metric is the wire size the acceptance criterion compares.
func BenchmarkEncodeCensus(b *testing.B) {
	m := benchMessage(b, transport.KindCensus,
		transport.Census{Edge: 3, Round: 117, Counts: []int{12, 40, 7, 3, 0, 9, 1, 28}})
	for _, bc := range benchCodecs {
		b.Run(bc.name, func(b *testing.B) {
			buf := make([]byte, 0, 512)
			frame, err := bc.codec.AppendEncode(buf, m)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bc.codec.AppendEncode(buf[:0], m); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(frame)), "bytes/frame")
		})
	}
}

// BenchmarkRoundTrip measures a full encode+decode cycle per codec for the
// three message shapes that dominate wire traffic: the census (step ①), the
// ratio broadcast (step ②), and a vehicle upload (step ④).
func BenchmarkRoundTrip(b *testing.B) {
	items := make([]transport.Item, 4)
	for i := range items {
		items[i] = transport.Item{Owner: 7, Modality: sensor.LiDAR, Seq: i + 1}
	}
	messages := []transport.Message{
		benchMessage(b, transport.KindCensus,
			transport.Census{Edge: 3, Round: 117, Counts: []int{12, 40, 7, 3, 0, 9, 1, 28}}),
		benchMessage(b, transport.KindRatio, transport.Ratio{Round: 118, X: 0.7125}),
		benchMessage(b, transport.KindUpload,
			transport.Upload{Vehicle: 42, Round: 117, Decision: 6, Items: items}),
	}
	for _, bc := range benchCodecs {
		b.Run(bc.name, func(b *testing.B) {
			var total int
			buf := make([]byte, 0, 1024)
			for _, m := range messages {
				frame, err := bc.codec.AppendEncode(buf[:0], m)
				if err != nil {
					b.Fatal(err)
				}
				total += len(frame)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := messages[i%len(messages)]
				frame, err := bc.codec.AppendEncode(buf[:0], m)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := bc.codec.Decode(frame); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(total)/float64(len(messages)), "bytes/frame")
		})
	}
}

// benchGraph is the 2-region graph the consensus benchmarks fold over.
type benchGraph struct{}

func (benchGraph) M() int { return 2 }
func (benchGraph) Gamma(i, j int) float64 {
	if i == j {
		return 0.8
	}
	return 0.2
}
func (benchGraph) Neighbors(i int) []int {
	if i == 0 {
		return []int{1}
	}
	return []int{0}
}

func benchCloudServer(b *testing.B, lag int) *cloud.Server {
	b.Helper()
	m, err := game.NewModel(lattice.PaperPayoffs(), benchGraph{}, []float64{3, 3})
	if err != nil {
		b.Fatal(err)
	}
	target := []float64{0.7, 0, 0, 0, 0, 0, 0, 0}
	field, err := policy.NewUniformField(2, target, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for k := 1; k < 8; k++ {
			field.P[i][k].Lo, field.P[i][k].Hi = 0, 1
		}
	}
	fds, err := policy.NewFDS(m, field, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := cloud.NewServer(fds, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		b.Fatal(err)
	}
	if lag > 0 {
		srv.SetFixedLag(lag)
	}
	return srv
}

// BenchmarkConsensusRoundsPerSec measures round-barrier fold throughput at
// the cloud: each iteration is one complete two-region round. The direct
// variant is the plain fold, lag16 adds the fixed-lag window's per-round
// snapshots, and rewind pays a full rewind + re-fold every round (a late
// non-identical census for the round just completed).
func BenchmarkConsensusRoundsPerSec(b *testing.B) {
	c0 := []int{12, 40, 7, 3, 0, 9, 1, 28}
	c1 := []int{5, 22, 31, 0, 8, 14, 2, 18}
	fullRound := func(b *testing.B, srv *cloud.Server, round int) {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := srv.Submit(transport.Census{Edge: 1, Round: round, Counts: c1}); err != nil {
				b.Error(err)
			}
		}()
		if _, err := srv.Submit(transport.Census{Edge: 0, Round: round, Counts: c0}); err != nil {
			b.Fatal(err)
		}
		wg.Wait()
	}
	for _, bench := range []struct {
		name string
		lag  int
	}{
		{"direct", 0},
		{"lag16", 16},
	} {
		b.Run(bench.name, func(b *testing.B) {
			srv := benchCloudServer(b, bench.lag)
			defer srv.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fullRound(b, srv, i)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rounds/s")
		})
	}
	b.Run("rewind", func(b *testing.B) {
		srv := benchCloudServer(b, 16)
		defer srv.Close()
		late := []int{9, 9, 9, 9, 9, 9, 9, 9}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fullRound(b, srv, i)
			// A differing late census for the round just folded: rewinds and
			// re-folds it (window depth 1 behind the head).
			if _, err := srv.Submit(transport.Census{Edge: 1, Round: i, Counts: late}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rounds/s")
	})
}

// benchRingGraph couples m regions in a sparse cycle, matching the graph
// the sharded load harness folds over.
type benchRingGraph struct{ m int }

func (g benchRingGraph) M() int { return g.m }
func (g benchRingGraph) Gamma(i, j int) float64 {
	if i == j {
		return 0.6
	}
	d := i - j
	if d < 0 {
		d = -d
	}
	if d == 1 || d == g.m-1 {
		return 0.2
	}
	return 0
}
func (g benchRingGraph) Neighbors(i int) []int {
	return []int{(i + g.m - 1) % g.m, (i + 1) % g.m}
}

// BenchmarkShardedConsensusRoundsPerSec measures aggregation-tier fold
// throughput under the sharded submission shape: each iteration is one
// 16-region round arriving as 4 concurrent census batches of 4 regions —
// what 4 shard coordinators forward upstream per round.
func BenchmarkShardedConsensusRoundsPerSec(b *testing.B) {
	const (
		regions = 16
		shards  = 4
	)
	m, err := game.NewModel(lattice.PaperPayoffs(), benchRingGraph{m: regions}, func() []float64 {
		betas := make([]float64, regions)
		for i := range betas {
			betas[i] = 3
		}
		return betas
	}())
	if err != nil {
		b.Fatal(err)
	}
	target := []float64{0.7, 0, 0, 0, 0, 0, 0, 0}
	field, err := policy.NewUniformField(regions, target, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < regions; i++ {
		for k := 1; k < 8; k++ {
			field.P[i][k].Lo, field.P[i][k].Hi = 0, 1
		}
	}
	fds, err := policy.NewFDS(m, field, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := cloud.NewServer(fds, game.NewUniformState(regions, 8, 0.5))
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	srv.SetFixedLag(16)

	counts := func(region, round int) []int {
		cs := make([]int, 8)
		for k := range cs {
			cs[k] = 1 + (region*31+round*7+k*3)%5
		}
		return cs
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for s := 0; s < shards; s++ {
			batch := transport.CensusBatch{Shard: s, Round: i}
			for r := s * (regions / shards); r < (s+1)*(regions/shards); r++ {
				batch.Censuses = append(batch.Censuses, transport.Census{Edge: r, Round: i, Counts: counts(r, i)})
			}
			wg.Add(1)
			go func(batch transport.CensusBatch) {
				defer wg.Done()
				if _, err := srv.SubmitBatch(batch); err != nil {
					b.Error(err)
				}
			}(batch)
		}
		wg.Wait()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rounds/s")
}

// BenchmarkJournalAppend measures the durable journal's append+fsync cost
// per record under the two commit disciplines: one fsync per record (the
// historical floor) and group commit, where concurrent appenders share a
// batched fsync. The parallel driver models a gossip tier journaling many
// edges' local rounds against one store.
func BenchmarkJournalAppend(b *testing.B) {
	record := []byte(`{"round":117,"censuses":{"3":[12,40,7,3,0,9,1,28]}}`)
	for _, bc := range []struct {
		name  string
		group int
	}{
		{"sync", 0},
		{"group8", 8},
	} {
		b.Run(bc.name, func(b *testing.B) {
			store, err := durable.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			if bc.group > 0 {
				store.SetGroupCommit(bc.group, time.Millisecond)
			}
			// 16 appenders regardless of GOMAXPROCS: the group discipline
			// batches whatever accumulates while an fsync is in flight, so
			// the win needs concurrent writers, not CPUs.
			b.SetParallelism(16 / runtime.GOMAXPROCS(0))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := store.Append(record); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
