// Citywide: the full Futian-scale pipeline of the paper, end to end —
// synthetic road network at the paper's ~5-6k-segment scale, a day-long
// vehicle trace, travel-time betweenness centrality, Algorithm-1 clustering
// into 20 regions, the auxiliary region graph, and one FDS shaping run
// across all regions. Takes a couple of minutes; pass -quick for a reduced
// size.
//
//	go run ./examples/citywide [-quick]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
)

func main() {
	quick := flag.Bool("quick", false, "run a reduced-size city")
	flag.Parse()

	cfg := sim.PaperWorldConfig()
	if *quick {
		cfg = sim.DefaultWorldConfig()
	}

	started := time.Now()
	fmt.Printf("building city (%dx%d grid, %d+%d vehicles, %d regions)...\n",
		cfg.Net.Rows, cfg.Net.Cols, cfg.Trace.Taxis, cfg.Trace.Transit, cfg.Regions)
	system, err := core.NewSystem(cfg, sim.MacroOptions{MaxRounds: 2000, Lambda: 0.05, Tau: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	w := system.World
	fmt.Printf("built in %v: %d segments, %d fixes, %d regions, %d region-graph edges\n",
		time.Since(started).Round(time.Second),
		w.Net.NumSegments(), w.Trace.NumFixes(), w.Assignment.M, w.Graph.NumEdges())

	// Region summary (the Fig. 8 view).
	rows := [][]string{{"region", "segments", "beta", "coeff std"}}
	for i, st := range w.RegionStats {
		rows = append(rows, []string{
			fmt.Sprintf("r%d", i),
			fmt.Sprintf("%d", st.Size),
			metrics.FormatFloat(w.Beta[i]),
			metrics.FormatFloat(st.Std),
		})
	}
	if err := metrics.Table(os.Stdout, rows); err != nil {
		log.Fatal(err)
	}

	// One citywide shaping run: the operator mandates a safety floor on the
	// all-sharing decision P1 and FDS raises each region's sharing ratio
	// just enough to make the mandate hold. The floor is per-region
	// feasible — 80% of the region's best achievable P1 level, capped at
	// 20% — because low-coefficient regions cannot sustain high P1 shares
	// at any ratio. One-sided fields like this express operational intent
	// and are robust to the coupling between regions (fully pinned interior
	// mixes can be unreachable for a single per-region knob; see
	// EXPERIMENTS.md).
	fmt.Println("\nequilibrating the morning population at x=0.15...")
	start, err := system.StartAt(0.15)
	if err != nil {
		log.Fatal(err)
	}
	p1Before := 0.0
	for i := range start.P {
		p1Before += start.P[i][0]
	}
	p1Before /= float64(len(start.P))

	fmt.Println("probing each region's best achievable P1 level (x=1)...")
	_, best, err := system.ReachableField(start, 1.0, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	field := policy.NewFreeField(system.Model().M(), system.Model().K())
	for i := 0; i < system.Model().M(); i++ {
		floor := 0.8 * best.P[i][0]
		if floor > 0.2 {
			floor = 0.2
		}
		field.P[i][0].Lo = floor
	}
	fmt.Println("shaping toward the citywide safety floor with FDS...")
	res, err := system.Shape(start, field)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged=%v in %d rounds (lower bound %d, ratio %.2f)\n",
		res.Shape.Converged, res.Shape.Rounds, res.LowerBound,
		metrics.ApproximationRatio(res.Shape.Rounds, res.LowerBound))

	final := res.Shape.Trajectory[len(res.Shape.Trajectory)-1]
	p1After := 0.0
	for i := range final {
		p1After += final[i][0]
	}
	p1After /= float64(len(final))
	fmt.Printf("mean P1 share: %.0f%% -> %.0f%%\n", p1Before*100, p1After*100)

	finalX := res.Shape.RatioTrace[len(res.Shape.RatioTrace)-1]
	sx := metrics.Summarize(finalX)
	fmt.Printf("final sharing ratios: mean %.2f (min %.2f, max %.2f) over %d regions\n",
		sx.Mean, sx.Min, sx.Max, len(finalX))
}
