// Quickstart: the paper's pipeline in ~60 lines.
//
//	go run ./examples/quickstart
//
// It builds a small synthetic world (road network, vehicle trace,
// Algorithm-1 regions, game model), derives the Table II payoffs, steers
// the population's data-sharing decisions to a high-sharing desired field
// with FDS, and prints the result.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/lattice"
	"repro/internal/sim"
)

func main() {
	// 1. A laptop-sized world: synthetic Futian-like network + fleet.
	cfg := sim.DefaultWorldConfig()
	cfg.Net.Rows, cfg.Net.Cols = 10, 12
	cfg.Trace.Taxis, cfg.Trace.Transit = 30, 20
	cfg.Trace.Duration = 2 * time.Hour
	cfg.Regions = 4

	system, err := core.NewSystem(cfg, sim.MacroOptions{MaxRounds: 600})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("world: %d road segments, %d regions, %d vehicles\n",
		system.World.Net.NumSegments(), system.Model().M(), system.World.Trace.NumVehicles())

	// 2. The derived Table II payoffs.
	pay := system.Payoffs()
	fmt.Println("decision payoffs (f_k, g_k):")
	for k := 0; k < pay.K(); k++ {
		fmt.Printf("  P%d %-22s f=%.3f g=%.3f\n",
			k+1, pay.Lattice().MustShare(lattice.Decision(k+1)).String(), pay.Utility[k], pay.Cost[k])
	}

	// 3. Start from a low-sharing population, derive a reachable
	// high-sharing desired field, and let FDS steer.
	start, err := system.StartAt(0.15)
	if err != nil {
		log.Fatal(err)
	}
	field, target, err := system.ReachableField(start, 0.85, 0.04)
	if err != nil {
		log.Fatal(err)
	}
	res, err := system.Shape(start, field)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFDS: converged=%v in %d rounds (lower bound %d)\n",
		res.Shape.Converged, res.Shape.Rounds, res.LowerBound)
	fmt.Printf("region 0 target: %.3f\n", target.P[0])
	fmt.Printf("region 0 final:  %.3f\n", res.Shape.Trajectory[len(res.Shape.Trajectory)-1][0])
	fmt.Printf("final sharing ratios: %.2f\n", res.Shape.RatioTrace[len(res.Shape.RatioTrace)-1])
}
