// Distributed: the complete Fig. 1 system in one process — a cloud
// coordinator running FDS, one edge server per region, and hundreds of
// heterogeneous vehicle agents, all exchanging real protocol messages
// (steps ①-⑤) over the in-process transport. The same roles run over TCP
// across machines via cmd/cpnode.
//
//	go run ./examples/distributed
//
// With -metrics the whole system — world build, cloud consensus rounds,
// fault injection, vehicle reconnects — reports through one obs registry
// served over HTTP:
//
//	go run ./examples/distributed -metrics 127.0.0.1:9100 &
//	curl -s http://127.0.0.1:9100/metrics | grep -E 'consensus|fault|worldbuild'
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/transport"
)

func main() {
	metricsAddr := flag.String("metrics", "",
		"serve /metrics, /debug/spans and /debug/pprof on this address (empty = off)")
	faultDrop := flag.Float64("fault-drop", 0.02,
		"per-message drop probability on vehicle links (0 = clean run)")
	codecName := flag.String("codec", "",
		"wire codec for the in-process transport: json | binary (empty = typed in-memory messages, no serialization)")
	flag.Parse()

	if *codecName != "" {
		if _, err := transport.CodecByName(*codecName); err != nil {
			log.Fatal(err)
		}
	}

	o := obs.New()
	transport.Instrument(o) // wire bytes + codec encode/decode latency
	boundAddr := ""
	if *metricsAddr != "" {
		msrv, err := obs.Serve(*metricsAddr, o)
		if err != nil {
			log.Fatal(err)
		}
		defer msrv.Close()
		boundAddr = msrv.Addr()
		fmt.Printf("metrics: http://%s/metrics\n", boundAddr)
	}

	cfg := sim.DefaultWorldConfig()
	cfg.Net.Rows, cfg.Net.Cols = 10, 12
	cfg.Trace.Taxis, cfg.Trace.Transit = 30, 20
	cfg.Trace.Duration = 2 * time.Hour
	cfg.Regions = 4

	builder := sim.NewWorldBuilder()
	builder.Instrument(o)
	world, err := builder.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	system, err := core.NewSystemFromWorld(world, sim.MacroOptions{Tau: 0.25})
	if err != nil {
		log.Fatal(err)
	}

	// The cloud's desired field: the regime reachable from the current
	// population at a high sharing ratio.
	start, err := system.StartAt(0.5)
	if err != nil {
		log.Fatal(err)
	}
	field, target, err := system.ReachableField(start, 0.85, 0.1)
	if err != nil {
		log.Fatal(err)
	}

	simCfg := sim.AgentSimConfig{
		VehiclesPerRegion: 50,
		Rounds:            150,
		Seed:              42,
		X0:                0.5,
		Tau:               0.25,
		PrivacyWeightStd:  0.15, // heterogeneous privacy preferences
		InitialShares:     start.P,
		Obs:               o,
		Codec:             *codecName,
	}
	if *faultDrop > 0 {
		simCfg.Fault = &transport.FaultConfig{DropProb: *faultDrop}
	}
	fmt.Printf("launching cloud + %d edge servers + %d vehicle agents...\n",
		system.Model().M(), system.Model().M()*simCfg.VehiclesPerRegion)
	res, err := system.RunDistributed(field, simCfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("converged=%v after %d rounds; %d sensor items delivered via step ⑤\n",
		res.Converged, res.Rounds, res.TotalDeliveredItems)
	final := res.SharesTrace[len(res.SharesTrace)-1]
	finalX := res.RatioTrace[len(res.RatioTrace)-1]
	for i := range final {
		fmt.Printf("region %d: x=%.2f observed=%s target=%s\n",
			i, finalX[i], top2(final[i]), top2(target.P[i]))
	}
	if boundAddr != "" {
		fmt.Printf("metrics still served on http://%s/metrics — ctrl-C to exit\n", boundAddr)
		select {}
	}
}

// top2 formats the two largest shares of a distribution.
func top2(p []float64) string {
	i1, i2 := -1, -1
	for k := range p {
		if i1 < 0 || p[k] > p[i1] {
			i2 = i1
			i1 = k
		} else if i2 < 0 || p[k] > p[i2] {
			i2 = k
		}
	}
	return fmt.Sprintf("P%d=%.0f%% P%d=%.0f%%", i1+1, p[i1]*100, i2+1, p[i2]*100)
}
