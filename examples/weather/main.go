// Weather-adaptive desired fields (Section V-C of the paper): "under
// weather such as fog, rain and snow, we require a higher proportion of
// camera information in the desired decision field, while on a sunny day,
// the proportion of camera data is set lower." This example encodes the two
// regimes as one-sided desired decision fields — lower bounds on
// camera-sharing mass in fog, upper bounds on it in sunshine — and lets FDS
// re-shape the population each time the weather flips.
//
//	go run ./examples/weather
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/lattice"
	"repro/internal/policy"
	"repro/internal/sensor"
	"repro/internal/sim"
)

func main() {
	cfg := sim.DefaultWorldConfig()
	cfg.Net.Rows, cfg.Net.Cols = 10, 12
	cfg.Trace.Taxis, cfg.Trace.Transit = 30, 20
	cfg.Trace.Duration = 2 * time.Hour
	cfg.Regions = 4

	system, err := core.NewSystem(cfg, sim.MacroOptions{MaxRounds: 600, Tau: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	m, k := system.Model().M(), system.Model().K()

	// Fog: the all-sharing decision P1 (which includes camera) must carry
	// at least 20% of every region — a floor even the lowest-coefficient
	// region can sustain (a requirement beyond a region's best reachable
	// equilibrium would make the field infeasible there). Sunny: every
	// camera-sharing decision is capped at 15% — above the smoothed-best-
	// response floor exp(-dq/tau) that keeps marginal decisions alive, so
	// the cap is achievable. All other shares are left free — the operator
	// states intent, not the full distribution.
	fogField := policy.NewFreeField(m, k)
	for i := 0; i < m; i++ {
		fogField.P[i][0].Lo = 0.2 // P1 >= 20%
	}
	sunnyField := policy.NewFreeField(m, k)
	for i := 0; i < m; i++ {
		for d := 1; d <= k; d++ {
			if system.Payoffs().Lattice().MustShare(lattice.Decision(d)).Has(sensor.Camera) {
				sunnyField.P[i][d-1].Hi = 0.15
			}
		}
	}

	// Overnight the population settled under a mild sharing regime.
	state, err := system.StartAt(0.4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("overnight population (region 0):", fmtShares(state.P[0]))

	transitions := []struct {
		name  string
		field *policy.Field
	}{
		{"fog rolls in  (need camera-rich mix)", fogField},
		{"sky clears    (cap camera exposure)", sunnyField},
		{"evening fog   (camera-rich again)", fogField},
	}
	for _, tr := range transitions {
		res, err := system.Shape(state, tr.field)
		if err != nil {
			log.Fatal(err)
		}
		final := res.Shape.Trajectory[len(res.Shape.Trajectory)-1]
		fmt.Printf("%s: converged=%v in %d rounds; region 0 now %s (camera mass %.0f%%, x=%.2f)\n",
			tr.name, res.Shape.Converged, res.Shape.Rounds,
			fmtShares(final[0]), cameraShare(system, final[0])*100,
			res.Shape.RatioTrace[len(res.Shape.RatioTrace)-1][0])
		state = lastState(res, state)
	}
}

// cameraShare sums the proportions of decisions that share camera data.
func cameraShare(s *core.System, p []float64) float64 {
	lat := s.Payoffs().Lattice()
	total := 0.0
	for d := 0; d < len(p); d++ {
		if lat.MustShare(lattice.Decision(d + 1)).Has(sensor.Camera) {
			total += p[d]
		}
	}
	return total
}

func lastState(res *sim.MacroResult, prev *game.State) *game.State {
	traj := res.Shape.Trajectory
	ratios := res.Shape.RatioTrace
	if len(traj) == 0 {
		return prev
	}
	out := &game.State{
		P: traj[len(traj)-1],
		X: ratios[len(ratios)-1],
	}
	return out.Clone()
}

func fmtShares(p []float64) string {
	out := ""
	for d, v := range p {
		if v >= 0.05 {
			if out != "" {
				out += " "
			}
			out += fmt.Sprintf("P%d=%.0f%%", d+1, v*100)
		}
	}
	if out == "" {
		out = "(all below 5%)"
	}
	return out
}
