// Command cpnode runs one role of the cooperative-perception system over
// real TCP, so the cloud/edge/vehicle protocol of Fig. 1 can be exercised
// across processes (or machines):
//
//	# terminal 1: the cloud coordinator for 2 regions
//	cpnode -role cloud -listen 127.0.0.1:7000 -regions 2
//
//	# terminals 2,3: one edge server per region
//	cpnode -role edge -id 0 -listen 127.0.0.1:7100 -cloud 127.0.0.1:7000 -vehicles 20 -rounds 40
//	cpnode -role edge -id 1 -listen 127.0.0.1:7101 -cloud 127.0.0.1:7000 -vehicles 20 -rounds 40
//
//	# terminals 4,5: vehicle fleets
//	cpnode -role vehicles -edge 127.0.0.1:7100 -n 20 -id-base 100
//	cpnode -role vehicles -edge 127.0.0.1:7101 -n 20 -id-base 200
//
// The cloud steers both regions toward a high-sharing desired field with
// FDS; watch the per-round ratio and decision census printed by the edges.
//
// Any role can additionally expose its observability endpoint:
//
//	cpnode -role cloud ... -metrics 127.0.0.1:9100
//	curl -s http://127.0.0.1:9100/metrics | grep consensus_rounds_total
//
// which serves the obs registry (/metrics, Prometheus text format), the
// recent per-round spans (/debug/spans), and net/http/pprof.
//
// The consensus tier can also be sharded by region group: shard
// coordinators own their groups' round barriers and batch each round
// upstream to one aggregator, whose global fold stays bit-identical to a
// single cloud (same consensus_state_hash):
//
//	# the aggregation tier (a cloud that answers census batches)
//	cpnode -role aggregator -listen 127.0.0.1:7000 -regions 4
//
//	# four shard coordinators, regions assigned by the rendezvous ring
//	cpnode -role shard -shards 4 -shard-id 0 -listen 127.0.0.1:7200 -aggregator 127.0.0.1:7000 -regions 4
//	...
//	cpnode -role shard -shards 4 -shard-id 3 -listen 127.0.0.1:7203 -aggregator 127.0.0.1:7000 -regions 4
//
//	# edges list every shard address; each routes to its region's owner
//	cpnode -role edge -id 0 -shards 4 -cloud 127.0.0.1:7200,127.0.0.1:7201,127.0.0.1:7202,127.0.0.1:7203 ...
//
// Edges can instead form an edge-local gossip data plane: a neighborhood
// of edges exchanges censuses peer-to-peer, folds the consensus locally
// (same FDS core as the cloud), and its leader — the lowest edge id —
// escalates a compacted digest to the cloud every K rounds. The cloud
// becomes a slow control plane; edges keep shaping traffic while it is
// unreachable and reconcile on heal:
//
//	# the control plane (never on the round critical path)
//	cpnode -role cloud -listen 127.0.0.1:7000 -regions 2
//
//	# a two-edge neighborhood, escalating every 4 local rounds
//	cpnode -role edge -id 0 -listen 127.0.0.1:7100 -gossip-listen 127.0.0.1:7300 \
//	  -gossip-peers 1=127.0.0.1:7301 -gossip-every 4 -cloud 127.0.0.1:7000 -regions 2 ...
//	cpnode -role edge -id 1 -listen 127.0.0.1:7101 -gossip-listen 127.0.0.1:7301 \
//	  -gossip-peers 0=127.0.0.1:7300 -gossip-every 4 -cloud 127.0.0.1:7000 -regions 2 ...
//
// With -gossip-failover-ttl the leadership itself is fault tolerant: the
// leader heartbeats a lease to its peers, and when the lease lapses the ring
// successor promotes itself under a higher epoch, takes over the mirrored
// escalation backlog, and keeps escalating — a kill -9'd leader costs no
// digests. The killed node can restart from -state-dir and rejoins as a
// follower; the cloud's per-neighborhood digest watermark absorbs any
// re-escalated overlap. -gossip-max-backlog bounds the buffered digests
// while the cloud is unreachable (shedding oldest first).
//
// cpnode is a thin adapter over internal/scenario's typed NodeConfig: each
// flag the invocation actually sets maps to one functional option, and an
// option set on a role that ignores it is rejected up front ("-role edge
// -fixed-lag 8" is an error, not a silently dead knob). The same NodeConfig
// constructors wire cmd/loadgen, cmd/scenario, and examples/distributed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/edge"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/transport"
)

func main() {
	var (
		role      = flag.String("role", "", "cloud | aggregator | shard | edge | vehicles")
		listen    = flag.String("listen", "127.0.0.1:0", "listen address (cloud, shard, edge)")
		cloudAddr = flag.String("cloud", "127.0.0.1:7000", "cloud address, or comma-separated shard addresses with -shards > 1 (edge)")
		edgeAddr  = flag.String("edge", "127.0.0.1:7100", "edge address (vehicles)")
		id        = flag.Int("id", 0, "edge/region id (edge)")
		idBase    = flag.Int("id-base", 100, "first vehicle id (vehicles)")
		regions   = flag.Int("regions", 2, "number of regions (cloud, aggregator, shard, edge)")
		n         = flag.Int("n", 20, "fleet size (vehicles)")
		rounds    = flag.Int("rounds", 40, "rounds to run (edge)")
		vehiclesN = flag.Int("vehicles", 20, "vehicles to wait for before starting (edge)")
		x0        = flag.Float64("x0", 0.3, "initial sharing ratio (cloud)")
		targetX   = flag.Float64("target-x", 0.85, "desired sharing regime (cloud)")
		eps       = flag.Float64("eps", 0.05, "desired-field tolerance (cloud)")
		fieldPath = flag.String("field", "", "desired-field JSON spec (cloud; overrides -target-x)")
		beta      = flag.Float64("beta", 4.0, "utility coefficient (cloud, vehicles)")
		seed      = flag.Int64("seed", 1, "random seed")

		faultDrop = flag.Float64("fault-drop", 0,
			"fault injection: per-message drop probability on this node's links")
		faultDelay = flag.Duration("fault-delay", 0,
			"fault injection: max injected per-message delay on this node's links (delays reorder frames)")
		faultDup = flag.Float64("fault-dup", 0,
			"fault injection: per-message duplication probability on this node's links")
		fixedLag = flag.Int("fixed-lag", 0,
			"cloud: rewind window in rounds; a census arriving this late is folded back in and the corrected ratio re-published (0 = answer late censuses from current state)")
		retryMax = flag.Int("retry-max", 8,
			"max dial attempts per reconnect burst (shard, edge, vehicles)")
		roundDeadline = flag.Duration("round-deadline", 10*time.Second,
			"cloud: complete a round barrier after this long with last-known shares for missing edges (0 = wait forever)")
		metricsAddr = flag.String("metrics", "",
			"serve /metrics, /debug/spans and /debug/pprof on this address (e.g. 127.0.0.1:9100; empty = off)")
		codecName = flag.String("codec", "json",
			"wire codec this node declares on dialed TCP links: json | binary (accepted conns adopt the dialer's codec)")
		ioTimeout = flag.Duration("io-timeout", 0,
			"per-operation read/write deadline on every TCP conn, dialed or accepted (0 = off; must exceed the idle gap between rounds)")
		stateDir = flag.String("state-dir", "",
			"cloud, shard: durable state directory (checkpoint + journal); a restarted node resumes the consensus from it (empty = in-memory only)")
		leaseTTL = flag.Duration("lease-ttl", 0,
			"edge: membership lease TTL heartbeated to the cloud; a dead edge is evicted from the barrier quorum after this long (0 = no heartbeat)")
		shards = flag.Int("shards", 0,
			"number of shard coordinators in the consensus tier (shard: ring size; edge: route -cloud's address list by region owner; 0/1 = unsharded)")
		shardID = flag.Int("shard-id", 0,
			"this coordinator's index into the shard ring (shard)")
		aggregatorAddr = flag.String("aggregator", "127.0.0.1:7000",
			"aggregation-tier address census batches are forwarded to (shard)")
		shardDeadline = flag.Duration("shard-deadline", 5*time.Second,
			"shard: forward a round degraded after this long with owned regions missing (0 = wait for the full group)")
		gossipPeers = flag.String("gossip-peers", "",
			"edge: comma-separated region=addr gossip peers; non-empty switches the edge from direct census reports to local gossip rounds")
		gossipListen = flag.String("gossip-listen", "127.0.0.1:0",
			"edge: listen address peers dial for gossip censuses")
		gossipHood = flag.Int("gossip-hood", 0,
			"edge: this neighborhood's index among -gossip-of escalating to the cloud")
		gossipOf = flag.Int("gossip-of", 1,
			"edge: total neighborhoods the cloud folds digests from")
		gossipEvery = flag.Int("gossip-every", 1,
			"edge: the neighborhood leader escalates a digest every K-th local round")
		gossipDeadline = flag.Duration("gossip-deadline", 0,
			"edge: local round barrier deadline; a silent peer degrades the round after this long (0 = wait forever)")
		gossipFailoverTTL = flag.Duration("gossip-failover-ttl", 0,
			"edge: heartbeat lease TTL for neighborhood leadership; followers promote the ring successor after this long without a leader beat (0 = static leadership, no failover)")
		gossipMaxBacklog = flag.Int("gossip-max-backlog", 0,
			"edge: cap on buffered escalation digests while the cloud is unreachable; the oldest rounds are shed past the cap (0 = unbounded)")
	)
	flag.Parse()

	var o *obs.Observer
	if *metricsAddr != "" {
		o = obs.New()
		transport.Instrument(o) // wire bytes + codec encode/decode latency
		msrv, err := obs.Serve(*metricsAddr, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpnode: %v\n", err)
			os.Exit(1)
		}
		defer msrv.Close()
		fmt.Printf("metrics: serving /metrics, /debug/spans, /debug/pprof on http://%s\n", msrv.Addr())
	}

	// Each flag the invocation actually set (flag.Visit) maps to one typed
	// option; scenario.New rejects any option the role does not consume.
	optionByFlag := map[string]func() scenario.Option{
		"listen":          func() scenario.Option { return scenario.Listen(*listen) },
		"cloud":           func() scenario.Option { return scenario.CloudAddr(*cloudAddr) },
		"edge":            func() scenario.Option { return scenario.EdgeAddr(*edgeAddr) },
		"id":              func() scenario.Option { return scenario.EdgeID(*id) },
		"id-base":         func() scenario.Option { return scenario.IDBase(*idBase) },
		"regions":         func() scenario.Option { return scenario.Regions(*regions) },
		"n":               func() scenario.Option { return scenario.FleetSize(*n) },
		"rounds":          func() scenario.Option { return scenario.Rounds(*rounds) },
		"vehicles":        func() scenario.Option { return scenario.WaitVehicles(*vehiclesN) },
		"x0":              func() scenario.Option { return scenario.X0(*x0) },
		"target-x":        func() scenario.Option { return scenario.TargetX(*targetX) },
		"eps":             func() scenario.Option { return scenario.Eps(*eps) },
		"field":           func() scenario.Option { return scenario.FieldPath(*fieldPath) },
		"beta":            func() scenario.Option { return scenario.Beta(*beta) },
		"seed":            func() scenario.Option { return scenario.Seed(*seed) },
		"fixed-lag":       func() scenario.Option { return scenario.FixedLag(*fixedLag) },
		"retry-max":       func() scenario.Option { return scenario.RetryMax(*retryMax) },
		"round-deadline":  func() scenario.Option { return scenario.RoundDeadline(*roundDeadline) },
		"codec":           func() scenario.Option { return scenario.Codec(*codecName) },
		"io-timeout":      func() scenario.Option { return scenario.IOTimeout(*ioTimeout) },
		"state-dir":       func() scenario.Option { return scenario.StateDir(*stateDir) },
		"lease-ttl":       func() scenario.Option { return scenario.LeaseTTL(*leaseTTL) },
		"shards":          func() scenario.Option { return scenario.Shards(*shards) },
		"shard-id":        func() scenario.Option { return scenario.ShardID(*shardID) },
		"aggregator":      func() scenario.Option { return scenario.AggregatorAddr(*aggregatorAddr) },
		"shard-deadline":  func() scenario.Option { return scenario.ShardDeadline(*shardDeadline) },
		"gossip-peers":    func() scenario.Option { return scenario.GossipPeers(*gossipPeers) },
		"gossip-listen":   func() scenario.Option { return scenario.GossipListen(*gossipListen) },
		"gossip-hood":     func() scenario.Option { return scenario.GossipHood(*gossipHood) },
		"gossip-of":       func() scenario.Option { return scenario.GossipOf(*gossipOf) },
		"gossip-every":    func() scenario.Option { return scenario.GossipEvery(*gossipEvery) },
		"gossip-deadline": func() scenario.Option { return scenario.GossipDeadline(*gossipDeadline) },
		"gossip-failover-ttl": func() scenario.Option {
			return scenario.GossipFailoverTTL(*gossipFailoverTTL)
		},
		"gossip-max-backlog": func() scenario.Option { return scenario.GossipMaxBacklog(*gossipMaxBacklog) },
	}
	opts := []scenario.Option{scenario.WithLogf(log.Printf)}
	if o != nil {
		opts = append(opts, scenario.WithObs(o))
	}
	faultSet := false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "role", "metrics":
		case "fault-drop", "fault-delay", "fault-dup":
			faultSet = true
		default:
			if mk, ok := optionByFlag[f.Name]; ok {
				opts = append(opts, mk())
			}
		}
	})
	if faultSet {
		opts = append(opts, scenario.WithFault(&transport.FaultConfig{
			Seed:     *seed,
			DropProb: *faultDrop,
			DupProb:  *faultDup,
			MinDelay: *faultDelay / 20,
			MaxDelay: *faultDelay,
		}))
	}

	nc, err := scenario.New(scenario.Role(*role), opts...)
	if err == nil {
		switch nc.Role {
		case scenario.RoleCloud, scenario.RoleAggregator:
			err = runCloud(nc)
		case scenario.RoleShard:
			err = runShard(nc)
		case scenario.RoleEdge:
			err = runEdge(nc)
		case scenario.RoleVehicles:
			err = runVehicles(nc)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cpnode: %v\n", err)
		os.Exit(1)
	}
}

// runCloud starts the FDS coordinator over TCP and blocks until the
// listener dies or a termination signal arrives. With a state directory the
// consensus survives both kill -9 (journal replay on the next start) and
// SIGTERM (graceful drain: pending round completed, checkpoint written).
func runCloud(nc *scenario.NodeConfig) error {
	srv, what, err := nc.NewCloud()
	if err != nil {
		return err
	}
	if nc.StateDir != "" {
		fmt.Printf("cloud: durable state in %s, resuming at round %d\n", nc.StateDir, srv.Latest()+1)
	}
	l, err := nc.Listener()
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		s := <-sig
		log.Printf("cloud: %v received, draining", s)
		if err := srv.Drain(); err != nil {
			log.Printf("cloud: drain: %v", err)
		}
		_ = l.Close() // unblocks Serve
	}()
	fmt.Printf("cloud: listening on %s, steering %d regions toward %s (round deadline %v, fixed lag %d)\n",
		l.Addr(), nc.Regions, what, nc.RoundDeadline, nc.FixedLag)
	srv.Serve(l) // blocks
	return nil
}

// runShard starts one shard coordinator: the rendezvous ring over Shards
// members assigns its region group, rounds barrier locally and forward to
// the aggregation tier as one census batch each.
func runShard(nc *scenario.NodeConfig) error {
	coord, upstream, err := nc.NewShard(nil)
	if err != nil {
		return err
	}
	defer upstream.Close()
	if nc.StateDir != "" {
		fmt.Printf("shard %d: durable state in %s, resuming at round %d\n", nc.ShardID, nc.StateDir, coord.Latest()+1)
	}
	table, err := scenario.ShardTable(nc.Shards, nc.Regions)
	if err != nil {
		return err
	}
	l, err := nc.Listener()
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		s := <-sig
		log.Printf("shard %d: %v received, draining", nc.ShardID, s)
		if err := coord.Drain(); err != nil {
			log.Printf("shard %d: drain: %v", nc.ShardID, err)
		}
		_ = l.Close() // unblocks Serve
	}()
	fmt.Printf("shard %d/%d: listening on %s, owning regions %v, forwarding to %s (deadline %v)\n",
		nc.ShardID, nc.Shards, l.Addr(), table.Regions(nc.ShardID), nc.AggregatorAddr, nc.ShardDeadline)
	coord.Serve(l) // blocks
	coord.Close()
	return nil
}

func runEdge(nc *scenario.NodeConfig) error {
	srv := nc.NewEdge()
	l, err := nc.Listener()
	if err != nil {
		return err
	}
	go srv.Serve(l)
	defer srv.Close()
	fmt.Printf("edge %d: listening on %s, waiting for %d vehicles\n", nc.ID, l.Addr(), nc.Vehicles)

	for srv.NumVehicles() < nc.Vehicles {
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("edge %d: %d vehicles registered, starting rounds\n", nc.ID, srv.NumVehicles())

	if nc.GossipPeers != "" {
		return runEdgeGossip(nc, srv)
	}

	link, err := nc.NewCloudLink(nil)
	if err != nil {
		return err
	}
	defer link.Close()
	// Ratio corrections pushed after a cloud fixed-lag rewind (another
	// region's straggler changed the fold): adopt the corrected ratio at the
	// start of the next round. The callback runs on the session's read
	// goroutine, hence the mutex.
	var corrMu sync.Mutex
	correctedX, haveCorrection := 0.0, false
	link.OnCorrection = func(round int, cx float64) {
		corrMu.Lock()
		correctedX, haveCorrection = cx, true
		corrMu.Unlock()
		log.Printf("edge %d: cloud rewound through round %d; corrected x=%.4f", nc.ID, round, cx)
	}

	if nc.LeaseTTL > 0 {
		hb, err := nc.NewHeartbeat(nil)
		if err != nil {
			return err
		}
		hbStop := make(chan struct{})
		defer close(hbStop)
		go hb.Run(hbStop)
		fmt.Printf("edge %d: heartbeating membership lease (ttl %v)\n", nc.ID, nc.LeaseTTL)
	}

	x := 0.3
	for t := 0; t < nc.Rounds; t++ {
		corrMu.Lock()
		if haveCorrection {
			x, haveCorrection = correctedX, false
		}
		corrMu.Unlock()
		census, err := srv.RunRound(t, x, 5*time.Second)
		if err != nil {
			return fmt.Errorf("round %d: %w", t, err)
		}
		next, err := link.Report(t, census)
		if err != nil {
			// Degraded round: the cloud is unreachable; keep the current
			// ratio and try again next round.
			log.Printf("edge %d round %d: cloud unreachable (%v); keeping x=%.2f", nc.ID, t, err, x)
			continue
		}
		fmt.Printf("edge %d round %2d: x=%.2f census=%v -> next x=%.2f\n", nc.ID, t, x, census, next)
		x = next
	}
	return nil
}

// runEdgeGossip drives the edge through the gossip data plane: each round's
// census goes to the neighborhood, the next ratio comes from the local fold,
// and the leader escalates digests to the cloud on the -gossip-every cadence.
// The cloud being unreachable only delays escalation — rounds keep completing.
func runEdgeGossip(nc *scenario.NodeConfig, srv *edge.Server) error {
	peers, err := scenario.ParseGossipPeers(nc.GossipPeers)
	if err != nil {
		return err
	}
	members := scenario.GossipMembers(nc.ID, peers)
	peerDial := func(member int) (transport.Conn, error) {
		addr, ok := peers[member]
		if !ok {
			return nil, fmt.Errorf("cpnode: no address for gossip peer %d", member)
		}
		return nc.DialFunc(addr)()
	}
	node, what, err := nc.NewGossipNode(members, peerDial, nc.DialFunc(nc.CloudAddr))
	if err != nil {
		return err
	}
	defer node.Close()

	gopts, err := nc.TCPOptions()
	if err != nil {
		return err
	}
	gl, err := transport.ListenTCP(nc.GossipListen, gopts...)
	if err != nil {
		return err
	}
	defer gl.Close()
	go node.Serve(gl)

	role := "member"
	if node.Leader() {
		role = "leader"
	}
	if nc.StateDir != "" {
		fmt.Printf("edge %d: durable gossip state in %s, resuming at round %d\n", nc.ID, nc.StateDir, node.Latest()+1)
	}
	fmt.Printf("edge %d: gossiping on %s as %s of neighborhood %d/%d (members %v, escalate every %d), steering toward %s\n",
		nc.ID, gl.Addr(), role, nc.GossipHood, nc.GossipOf, members, nc.GossipEvery, what)

	x := node.X()
	for t := node.Latest() + 1; t < nc.Rounds; t++ {
		census, err := srv.RunRound(t, x, 5*time.Second)
		if err != nil {
			return fmt.Errorf("round %d: %w", t, err)
		}
		next, err := node.LocalRound(t, census)
		if err != nil {
			return fmt.Errorf("gossip round %d: %w", t, err)
		}
		line := fmt.Sprintf("edge %d round %2d: x=%.2f census=%v -> next x=%.2f", nc.ID, t, x, census, next)
		if cx, ok := node.CloudRatio(); ok {
			line += fmt.Sprintf(" (cloud view %.2f)", cx)
		}
		fmt.Println(line)
		x = next
	}
	// Drain the escalation backlog so the control plane sees the tail even
	// when the run length is not a multiple of -gossip-every.
	if err := node.Flush(); err != nil {
		log.Printf("edge %d: final digest flush: %v", nc.ID, err)
	}
	return nil
}

func runVehicles(nc *scenario.NodeConfig) error {
	fleet, err := nc.NewFleet(scenario.FleetSpec{
		N:               nc.N,
		IDBase:          nc.IDBase,
		Beta:            nc.Beta,
		Seed:            nc.Seed,
		RegisterTimeout: 5 * time.Second,
	})
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	errCh := make(chan error, nc.N)
	for _, fv := range fleet {
		dialer := &transport.Dialer{
			Dial:        nc.DialFunc(nc.EdgeAddr),
			MaxAttempts: nc.RetryMax,
			Seed:        int64(fv.Agent.Profile.ID) + 0x5eed,
		}
		client := fv.Client
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := client.RunWithReconnect(dialer); err != nil {
				errCh <- err
			}
		}()
	}
	fmt.Printf("vehicles: %d agents connected to %s\n", nc.N, nc.EdgeAddr)
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}
	fmt.Println("vehicles: edge closed the session, exiting")
	return nil
}
