// Command cpnode runs one role of the cooperative-perception system over
// real TCP, so the cloud/edge/vehicle protocol of Fig. 1 can be exercised
// across processes (or machines):
//
//	# terminal 1: the cloud coordinator for 2 regions
//	cpnode -role cloud -listen 127.0.0.1:7000 -regions 2
//
//	# terminals 2,3: one edge server per region
//	cpnode -role edge -id 0 -listen 127.0.0.1:7100 -cloud 127.0.0.1:7000 -vehicles 20 -rounds 40
//	cpnode -role edge -id 1 -listen 127.0.0.1:7101 -cloud 127.0.0.1:7000 -vehicles 20 -rounds 40
//
//	# terminals 4,5: vehicle fleets
//	cpnode -role vehicles -edge 127.0.0.1:7100 -n 20 -id-base 100
//	cpnode -role vehicles -edge 127.0.0.1:7101 -n 20 -id-base 200
//
// The cloud steers both regions toward a high-sharing desired field with
// FDS; watch the per-round ratio and decision census printed by the edges.
//
// Any role can additionally expose its observability endpoint:
//
//	cpnode -role cloud ... -metrics 127.0.0.1:9100
//	curl -s http://127.0.0.1:9100/metrics | grep consensus_rounds_total
//
// which serves the obs registry (/metrics, Prometheus text format), the
// recent per-round spans (/debug/spans), and net/http/pprof.
//
// The consensus tier can also be sharded by region group: shard
// coordinators own their groups' round barriers and batch each round
// upstream to one aggregator, whose global fold stays bit-identical to a
// single cloud (same consensus_state_hash):
//
//	# the aggregation tier (a cloud that answers census batches)
//	cpnode -role aggregator -listen 127.0.0.1:7000 -regions 4
//
//	# four shard coordinators, regions assigned by the rendezvous ring
//	cpnode -role shard -shards 4 -shard-id 0 -listen 127.0.0.1:7200 -aggregator 127.0.0.1:7000 -regions 4
//	...
//	cpnode -role shard -shards 4 -shard-id 3 -listen 127.0.0.1:7203 -aggregator 127.0.0.1:7000 -regions 4
//
//	# edges list every shard address; each routes to its region's owner
//	cpnode -role edge -id 0 -shards 4 -cloud 127.0.0.1:7200,127.0.0.1:7201,127.0.0.1:7202,127.0.0.1:7203 ...
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cloud"
	"repro/internal/edge"
	"repro/internal/game"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/sensor"
	"repro/internal/shard"
	"repro/internal/transport"
	"repro/internal/vehicle"
)

func main() {
	var (
		role      = flag.String("role", "", "cloud | aggregator | shard | edge | vehicles")
		listen    = flag.String("listen", "127.0.0.1:0", "listen address (cloud, shard, edge)")
		cloudAddr = flag.String("cloud", "127.0.0.1:7000", "cloud address, or comma-separated shard addresses with -shards > 1 (edge)")
		edgeAddr  = flag.String("edge", "127.0.0.1:7100", "edge address (vehicles)")
		id        = flag.Int("id", 0, "edge/region id (edge)")
		idBase    = flag.Int("id-base", 100, "first vehicle id (vehicles)")
		regions   = flag.Int("regions", 2, "number of regions (cloud)")
		n         = flag.Int("n", 20, "fleet size (vehicles)")
		rounds    = flag.Int("rounds", 40, "rounds to run (edge)")
		vehiclesN = flag.Int("vehicles", 20, "vehicles to wait for before starting (edge)")
		x0        = flag.Float64("x0", 0.3, "initial sharing ratio (cloud)")
		targetX   = flag.Float64("target-x", 0.85, "desired sharing regime (cloud)")
		eps       = flag.Float64("eps", 0.05, "desired-field tolerance (cloud)")
		fieldPath = flag.String("field", "", "desired-field JSON spec (cloud; overrides -target-x)")
		beta      = flag.Float64("beta", 4.0, "utility coefficient (cloud, vehicles)")
		seed      = flag.Int64("seed", 1, "random seed")

		faultDrop = flag.Float64("fault-drop", 0,
			"fault injection: per-message drop probability on this node's links")
		faultDelay = flag.Duration("fault-delay", 0,
			"fault injection: max injected per-message delay on this node's links (delays reorder frames)")
		faultDup = flag.Float64("fault-dup", 0,
			"fault injection: per-message duplication probability on this node's links")
		fixedLag = flag.Int("fixed-lag", 0,
			"cloud: rewind window in rounds; a census arriving this late is folded back in and the corrected ratio re-published (0 = answer late censuses from current state)")
		retryMax = flag.Int("retry-max", 8,
			"max dial attempts per reconnect burst (edge, vehicles)")
		roundDeadline = flag.Duration("round-deadline", 10*time.Second,
			"cloud: complete a round barrier after this long with last-known shares for missing edges (0 = wait forever)")
		metricsAddr = flag.String("metrics", "",
			"serve /metrics, /debug/spans and /debug/pprof on this address (e.g. 127.0.0.1:9100; empty = off)")
		codecName = flag.String("codec", "json",
			"wire codec this node declares on dialed TCP links: json | binary (accepted conns adopt the dialer's codec)")
		ioTimeout = flag.Duration("io-timeout", 0,
			"per-operation read/write deadline on every TCP conn, dialed or accepted (0 = off; must exceed the idle gap between rounds)")
		stateDir = flag.String("state-dir", "",
			"cloud: durable state directory (checkpoint + journal); a restarted cloud resumes the consensus from it (empty = in-memory only)")
		leaseTTL = flag.Duration("lease-ttl", 0,
			"edge: membership lease TTL heartbeated to the cloud; a dead edge is evicted from the barrier quorum after this long (0 = no heartbeat)")
		shards = flag.Int("shards", 0,
			"number of shard coordinators in the consensus tier (shard: ring size; edge: route -cloud's address list by region owner; 0/1 = unsharded)")
		shardID = flag.Int("shard-id", 0,
			"this coordinator's index into the shard ring (shard)")
		aggregatorAddr = flag.String("aggregator", "127.0.0.1:7000",
			"aggregation-tier address census batches are forwarded to (shard)")
		shardDeadline = flag.Duration("shard-deadline", 5*time.Second,
			"shard: forward a round degraded after this long with owned regions missing (0 = wait for the full group)")
	)
	flag.Parse()

	codec, err := transport.CodecByName(*codecName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cpnode: %v\n", err)
		os.Exit(1)
	}
	// Options applied to every TCP endpoint this node opens: listeners pass
	// them to accepted conns (satellite fix: accepted conns previously never
	// inherited WithTimeout), dialed conns declare the codec.
	tcpOpts := []transport.TCPOption{transport.WithCodec(codec)}
	if *ioTimeout > 0 {
		tcpOpts = append(tcpOpts, transport.WithTimeout(*ioTimeout))
	}

	var o *obs.Observer
	if *metricsAddr != "" {
		o = obs.New()
		transport.Instrument(o) // wire bytes + codec encode/decode latency
		msrv, err := obs.Serve(*metricsAddr, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpnode: %v\n", err)
			os.Exit(1)
		}
		defer msrv.Close()
		fmt.Printf("metrics: serving /metrics, /debug/spans, /debug/pprof on http://%s\n", msrv.Addr())
	}

	var fault *transport.Fault
	if *faultDrop > 0 || *faultDelay > 0 || *faultDup > 0 {
		fault = transport.NewFault(transport.FaultConfig{
			Seed:     *seed,
			DropProb: *faultDrop,
			DupProb:  *faultDup,
			MinDelay: *faultDelay / 20,
			MaxDelay: *faultDelay,
		})
		if o != nil {
			fault.Instrument(o)
		}
	}

	switch *role {
	case "cloud", "aggregator":
		// An aggregator IS a cloud: the global fold is unchanged, it just
		// also answers the shards' census batches.
		err = runCloud(*listen, *regions, *x0, *targetX, *eps, *beta, *fieldPath, *stateDir, *roundDeadline, *fixedLag, fault, o, tcpOpts)
	case "shard":
		err = runShard(*listen, *aggregatorAddr, *shardID, *shards, *regions, *shardDeadline, *stateDir, *seed, *retryMax, fault, o, tcpOpts)
	case "edge":
		var addr string
		addr, err = shardRoute(*cloudAddr, *shards, *regions, *id)
		if err == nil {
			err = runEdge(*listen, addr, *id, *rounds, *vehiclesN, *seed, *retryMax, *leaseTTL, fault, o, tcpOpts)
		}
	case "vehicles":
		err = runVehicles(*edgeAddr, *n, *idBase, *beta, *seed, *retryMax, fault, o, tcpOpts)
	default:
		err = fmt.Errorf("unknown role %q (want cloud, aggregator, shard, edge, or vehicles)", *role)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cpnode: %v\n", err)
		os.Exit(1)
	}
}

// demoTau is the choice temperature used by both the cloud's mean-field
// probe and the vehicle agents; a soft temperature keeps the demo's
// equilibria away from basin boundaries so small fleets track the mean
// field (see EXPERIMENTS.md on multistability).
const demoTau = 0.25

// demoGraph is the cloud's region graph for the demo: all regions adjacent
// with a dominant intra-region frequency.
type demoGraph struct{ m int }

func (g demoGraph) M() int { return g.m }
func (g demoGraph) Gamma(i, j int) float64 {
	if i == j {
		return 0.9
	}
	if g.m == 1 {
		return 0
	}
	return 0.1 / float64(g.m-1)
}
func (g demoGraph) Neighbors(i int) []int {
	var out []int
	for j := 0; j < g.m; j++ {
		if j != i {
			out = append(out, j)
		}
	}
	return out
}

func runCloud(listen string, regions int, x0, targetX, eps, beta float64, fieldPath, stateDir string, roundDeadline time.Duration, fixedLag int, fault *transport.Fault, o *obs.Observer, tcpOpts []transport.TCPOption) error {
	betas := make([]float64, regions)
	for i := range betas {
		betas[i] = beta
	}
	model, err := game.NewModel(lattice.PaperPayoffs(), demoGraph{m: regions}, betas)
	if err != nil {
		return err
	}

	const lambda = 0.1
	var field *policy.Field
	if fieldPath != "" {
		// Operator-supplied declarative field (see policy.FieldSpec).
		fh, err := os.Open(fieldPath)
		if err != nil {
			return err
		}
		field, err = policy.ReadFieldSpec(fh)
		fh.Close()
		if err != nil {
			return err
		}
		if field.M() != regions || field.K() != model.K() {
			return fmt.Errorf("field spec is %dx%d, want %dx%d", field.M(), field.K(), regions, model.K())
		}
		return serveCloud(listen, model, field, regions, x0, lambda,
			fmt.Sprintf("field spec %s", fieldPath), stateDir, roundDeadline, fixedLag, fault, o, tcpOpts)
	}

	// Desired field: the regime reachable from a uniform mix at the target
	// ratio (adiabatic continuation under the same Lambda FDS uses).
	dyn, err := game.NewLogitDynamics(model, demoTau, 0.5)
	if err != nil {
		return err
	}
	probe := game.NewUniformState(regions, model.K(), x0)
	for ramping := true; ramping; {
		ramping = false
		for i := range probe.X {
			if probe.X[i]+lambda < targetX {
				probe.X[i] += lambda
				ramping = true
			} else {
				probe.X[i] = targetX
			}
		}
		if err := dyn.Step(probe); err != nil {
			return err
		}
	}
	if _, err := dyn.Equilibrium(probe, 1e-9, 20000); err != nil {
		return err
	}
	field = policy.NewFreeField(regions, model.K())
	for i := range probe.P {
		for k, v := range probe.P[i] {
			lo, hi := v-eps, v+eps
			if lo < 0 {
				lo = 0
			}
			if hi > 1 {
				hi = 1
			}
			field.P[i][k].Lo, field.P[i][k].Hi = lo, hi
		}
	}
	return serveCloud(listen, model, field, regions, x0, lambda,
		fmt.Sprintf("the x=%.2f regime (eps %.2f)", targetX, eps), stateDir, roundDeadline, fixedLag, fault, o, tcpOpts)
}

// serveCloud starts the FDS coordinator over TCP and blocks until the
// listener dies or a termination signal arrives. With a state directory the
// consensus survives both kill -9 (journal replay on the next start) and
// SIGTERM (graceful drain: pending round completed, checkpoint written).
func serveCloud(listen string, model *game.Model, field *policy.Field, regions int, x0, lambda float64, what, stateDir string, roundDeadline time.Duration, fixedLag int, fault *transport.Fault, o *obs.Observer, tcpOpts []transport.TCPOption) error {
	fds, err := policy.NewFDS(model, field, lambda)
	if err != nil {
		return err
	}
	if o != nil {
		fds.Instrument(o)
	}
	srv, err := cloud.NewServer(fds, game.NewUniformState(regions, model.K(), x0))
	if err != nil {
		return err
	}
	if o != nil {
		srv.Instrument(o)
	}
	srv.SetRoundDeadline(roundDeadline)
	srv.SetFixedLag(fixedLag) // before Open: recovery rebuilds the rewind window
	srv.SetLogf(log.Printf)
	if stateDir != "" {
		if err := srv.Open(stateDir); err != nil {
			return err
		}
		fmt.Printf("cloud: durable state in %s, resuming at round %d\n", stateDir, srv.Latest()+1)
	}
	l, err := transport.ListenTCP(listen, tcpOpts...)
	if err != nil {
		return err
	}
	if fault != nil {
		l = fault.WrapListener(l)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		s := <-sig
		log.Printf("cloud: %v received, draining", s)
		if err := srv.Drain(); err != nil {
			log.Printf("cloud: drain: %v", err)
		}
		_ = l.Close() // unblocks Serve
	}()
	fmt.Printf("cloud: listening on %s, steering %d regions toward %s (round deadline %v, fixed lag %d)\n",
		l.Addr(), regions, what, roundDeadline, fixedLag)
	srv.Serve(l) // blocks
	return nil
}

// shardRoute resolves the address an edge reports to. Unsharded (shards <=
// 1) it is the -cloud address verbatim; sharded, -cloud lists every shard
// coordinator's address in ring order and the edge's region owner picks one.
func shardRoute(cloudAddr string, shards, regions, edgeID int) (string, error) {
	addrs := strings.Split(cloudAddr, ",")
	if shards <= 1 {
		return addrs[0], nil
	}
	if len(addrs) != shards {
		return "", fmt.Errorf("-cloud lists %d addresses, want one per shard (%d)", len(addrs), shards)
	}
	ring, err := shard.NewRing(shard.Names(shards))
	if err != nil {
		return "", err
	}
	table, err := shard.BuildTable(ring, regions)
	if err != nil {
		return "", err
	}
	owner, err := table.Owner(edgeID)
	if err != nil {
		return "", fmt.Errorf("routing edge %d: %w (is -regions right?)", edgeID, err)
	}
	return strings.TrimSpace(addrs[owner]), nil
}

// runShard starts one shard coordinator: the rendezvous ring over -shards
// members assigns its region group, rounds barrier locally and forward to
// the aggregation tier as one census batch each.
func runShard(listen, aggregatorAddr string, shardID, shards, regions int, deadline time.Duration, stateDir string, seed int64, retryMax int, fault *transport.Fault, o *obs.Observer, tcpOpts []transport.TCPOption) error {
	if shards <= 0 {
		return fmt.Errorf("-role shard needs -shards >= 1, got %d", shards)
	}
	if shardID < 0 || shardID >= shards {
		return fmt.Errorf("-shard-id %d outside the ring of %d shards", shardID, shards)
	}
	ring, err := shard.NewRing(shard.Names(shards))
	if err != nil {
		return err
	}
	table, err := shard.BuildTable(ring, regions)
	if err != nil {
		return err
	}
	owned := table.Regions(shardID)
	if len(owned) == 0 {
		return fmt.Errorf("shard %d owns no regions in a %d-region/%d-shard ring (add regions or drop shards)", shardID, regions, shards)
	}
	upstream := &edge.BatchLink{
		Shard: shardID,
		Dialer: &transport.Dialer{
			Dial: func() (transport.Conn, error) {
				c, err := transport.DialTCP(aggregatorAddr, append([]transport.TCPOption{
					transport.WithTimeout(time.Minute)}, tcpOpts...)...)
				if err != nil {
					return nil, err
				}
				if fault != nil {
					c = fault.WrapConn(c)
				}
				return c, nil
			},
			MaxAttempts: retryMax,
			Seed:        seed,
		},
		ReplyTimeout: 30 * time.Second,
		Obs:          o,
	}
	defer upstream.Close()
	coord, err := shard.NewCoordinator(shard.Config{
		ID:       shardID,
		Regions:  owned,
		K:        lattice.NewPaper().K(),
		Deadline: deadline,
		Upstream: upstream,
		Logf:     log.Printf,
	})
	if err != nil {
		return err
	}
	if o != nil {
		coord.Instrument(o)
	}
	if stateDir != "" {
		if err := coord.Open(stateDir); err != nil {
			return err
		}
		fmt.Printf("shard %d: durable state in %s, resuming at round %d\n", shardID, stateDir, coord.Latest()+1)
	}
	l, err := transport.ListenTCP(listen, tcpOpts...)
	if err != nil {
		return err
	}
	if fault != nil {
		l = fault.WrapListener(l)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		s := <-sig
		log.Printf("shard %d: %v received, draining", shardID, s)
		if err := coord.Drain(); err != nil {
			log.Printf("shard %d: drain: %v", shardID, err)
		}
		_ = l.Close() // unblocks Serve
	}()
	fmt.Printf("shard %d/%d: listening on %s, owning regions %v, forwarding to %s (deadline %v)\n",
		shardID, shards, l.Addr(), owned, aggregatorAddr, deadline)
	coord.Serve(l) // blocks
	coord.Close()
	return nil
}

func runEdge(listen, cloudAddr string, id, rounds, vehiclesN int, seed int64, retryMax int, leaseTTL time.Duration, fault *transport.Fault, o *obs.Observer, tcpOpts []transport.TCPOption) error {
	srv := edge.NewServer(id, lattice.NewPaper(), seed)
	if o != nil {
		srv.Instrument(o)
	}
	l, err := transport.ListenTCP(listen, tcpOpts...)
	if err != nil {
		return err
	}
	if fault != nil {
		l = fault.WrapListener(l)
	}
	go srv.Serve(l)
	defer srv.Close()
	fmt.Printf("edge %d: listening on %s, waiting for %d vehicles\n", id, l.Addr(), vehiclesN)

	for srv.NumVehicles() < vehiclesN {
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("edge %d: %d vehicles registered, starting rounds\n", id, srv.NumVehicles())

	link := &edge.CloudLink{
		Edge: id,
		Dialer: &transport.Dialer{
			Dial: func() (transport.Conn, error) {
				c, err := transport.DialTCP(cloudAddr, append([]transport.TCPOption{
					transport.WithTimeout(time.Minute)}, tcpOpts...)...)
				if err != nil {
					return nil, err
				}
				if fault != nil {
					c = fault.WrapConn(c)
				}
				return c, nil
			},
			MaxAttempts: retryMax,
			Seed:        seed,
		},
		ReplyTimeout: 30 * time.Second,
		Obs:          o,
	}
	defer link.Close()
	// Ratio corrections pushed after a cloud fixed-lag rewind (another
	// region's straggler changed the fold): adopt the corrected ratio at the
	// start of the next round. The callback runs on the session's read
	// goroutine, hence the mutex.
	var corrMu sync.Mutex
	correctedX, haveCorrection := 0.0, false
	link.OnCorrection = func(round int, cx float64) {
		corrMu.Lock()
		correctedX, haveCorrection = cx, true
		corrMu.Unlock()
		log.Printf("edge %d: cloud rewound through round %d; corrected x=%.4f", id, round, cx)
	}

	if leaseTTL > 0 {
		// Membership heartbeat on its own connection (the census link's
		// request/reply exchange would race with the lease acks): the cloud
		// evicts this edge from the barrier quorum if it dies.
		hb := &edge.Heartbeat{
			Edge: id,
			Dialer: &transport.Dialer{
				Dial: func() (transport.Conn, error) {
					c, err := transport.DialTCP(cloudAddr, tcpOpts...)
					if err != nil {
						return nil, err
					}
					if fault != nil {
						c = fault.WrapConn(c)
					}
					return c, nil
				},
				MaxAttempts: retryMax,
				Seed:        seed + 1,
			},
			TTL: leaseTTL,
			Obs: o,
		}
		hbStop := make(chan struct{})
		defer close(hbStop)
		go hb.Run(hbStop)
		fmt.Printf("edge %d: heartbeating membership lease (ttl %v)\n", id, leaseTTL)
	}

	x := 0.3
	for t := 0; t < rounds; t++ {
		corrMu.Lock()
		if haveCorrection {
			x, haveCorrection = correctedX, false
		}
		corrMu.Unlock()
		census, err := srv.RunRound(t, x, 5*time.Second)
		if err != nil {
			return fmt.Errorf("round %d: %w", t, err)
		}
		next, err := link.Report(t, census)
		if err != nil {
			// Degraded round: the cloud is unreachable; keep the current
			// ratio and try again next round.
			log.Printf("edge %d round %d: cloud unreachable (%v); keeping x=%.2f", id, t, err, x)
			continue
		}
		fmt.Printf("edge %d round %2d: x=%.2f census=%v -> next x=%.2f\n", id, t, x, census, next)
		x = next
	}
	return nil
}

func runVehicles(edgeAddr string, n, idBase int, beta float64, seed int64, retryMax int, fault *transport.Fault, o *obs.Observer, tcpOpts []transport.TCPOption) error {
	payoffs := lattice.PaperPayoffs()
	rng := rand.New(rand.NewSource(seed))
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for v := 0; v < n; v++ {
		prof := vehicle.Profile{
			ID:            idBase + v,
			Equipped:      sensor.MaskAll,
			Desired:       sensor.MaskAll,
			PrivacyWeight: 1,
			Beta:          beta,
			Tau:           demoTau,
		}
		agent, err := vehicle.NewAgent(prof, payoffs, rng.Int63())
		if err != nil {
			return err
		}
		client := &vehicle.Client{
			Agent:           agent,
			Mu:              0.5,
			Cap:             sensor.TableIII(),
			RegisterTimeout: 5 * time.Second,
			Obs:             o,
		}
		dialer := &transport.Dialer{
			Dial: func() (transport.Conn, error) {
				c, err := transport.DialTCP(edgeAddr, tcpOpts...)
				if err != nil {
					return nil, err
				}
				if fault != nil {
					c = fault.WrapConn(c)
				}
				return c, nil
			},
			MaxAttempts: retryMax,
			Seed:        rng.Int63(),
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := client.RunWithReconnect(dialer); err != nil {
				errCh <- err
			}
		}()
	}
	fmt.Printf("vehicles: %d agents connected to %s\n", n, edgeAddr)
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}
	fmt.Println("vehicles: edge closed the session, exiting")
	return nil
}
