// Command loadgen drives the sharded consensus tier at fleet scale: it
// simulates -edges region servers, each aggregating -vehicles-per-edge
// simulated vehicles' decisions into a census per round, and reports them
// over real binary/TCP with connection multiplexing — -conns-per-shard
// worker connections per shard, each batching its slice of the shard's
// region group into one CensusBatch frame per round.
//
//	# self-contained: spawns an in-process aggregator + 4 shards on
//	# loopback TCP and drives 100k vehicles through them
//	loadgen -edges 1000 -vehicles-per-edge 100 -shards 4 -rounds 20
//
//	# against an externally started tier (cpnode -role aggregator/shard):
//	loadgen -spawn=false -shard-addrs 127.0.0.1:7200,127.0.0.1:7201,... \
//	        -edges 64 -vehicles-per-edge 32 -rounds 40
//
// It publishes loadgen_rounds_per_sec, loadgen_round_latency_seconds (and
// its p99) plus loadgen_vehicles through the obs registry (-metrics), and
// can append the run's numbers to a bench JSON (-bench-json) in the same
// shape scripts/bench.sh emits, keyed by scale so differently sized runs
// never gate against each other.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/edge"
	"repro/internal/lattice"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/shard"
	"repro/internal/transport"
)

func main() {
	var (
		edges      = flag.Int("edges", 1000, "simulated edge servers (= consensus regions)")
		vehPerEdge = flag.Int("vehicles-per-edge", 100, "simulated vehicles aggregated into each edge's census")
		rounds     = flag.Int("rounds", 20, "consensus rounds to drive")
		shards     = flag.Int("shards", 4, "shard coordinators in the tier")
		connsPer   = flag.Int("conns-per-shard", 8, "worker connections multiplexing each shard's region group")
		spawn      = flag.Bool("spawn", true, "spawn the aggregator + shard tier in-process on loopback TCP")
		aggAddr    = flag.String("aggregator", "", "external aggregator address (-spawn=false)")
		shardAddrs = flag.String("shard-addrs", "", "comma-separated external shard addresses in ring order (-spawn=false)")
		deadline   = flag.Duration("shard-deadline", 5*time.Second, "spawned shards: degraded-forward deadline")
		aggDead    = flag.Duration("round-deadline", 10*time.Second, "spawned aggregator: barrier deadline")
		seed       = flag.Int64("seed", 1, "census sampling seed")
		metricsAd  = flag.String("metrics", "", "serve /metrics on this address during the run (empty = off)")
		benchJSON  = flag.String("bench-json", "", "append this run's series to a bench JSON file (created if missing)")
	)
	flag.Parse()
	if err := run(*edges, *vehPerEdge, *rounds, *shards, *connsPer, *spawn,
		*aggAddr, *shardAddrs, *deadline, *aggDead, *seed, *metricsAd, *benchJSON); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
}

// spawnTier starts an aggregator and the shard coordinators on loopback
// TCP through the shared scenario.NodeConfig constructors, returning the
// shard addresses in ring order and a shutdown func. The cycle region graph
// keeps the inter-region coupling sparse (the O(M^2) dense demo graph is
// unusable at 1000 regions) and the P1 band field skips the mean-field
// probe, whose cost also scales with the region count.
func spawnTier(m, nShards int, shardDeadline, aggDeadline time.Duration) ([]string, func(), error) {
	field, err := scenario.P1BandField(m, lattice.NewPaper().K(), 0.7, 0.1)
	if err != nil {
		return nil, nil, err
	}
	nc := scenario.Defaults(scenario.RoleAggregator)
	nc.Regions = m
	nc.Beta = 3 // region mass
	nc.Graph = scenario.CycleGraph(m)
	nc.X0 = 0.5
	nc.FixedLag = 8
	nc.RoundDeadline = aggDeadline
	nc.Field = field
	agg, _, err := nc.NewCloud()
	if err != nil {
		return nil, nil, err
	}
	aggL, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		agg.Close()
		return nil, nil, err
	}
	go agg.Serve(aggL)

	var coords []*shard.Coordinator
	var links []*edge.BatchLink
	addrs := make([]string, nShards)
	shutdown := func() {
		for _, c := range coords {
			c.Close()
		}
		for _, l := range links {
			l.Close()
		}
		aggL.Close()
		agg.Close()
	}
	aggAddr := aggL.Addr()
	for i := 0; i < nShards; i++ {
		snc := scenario.Defaults(scenario.RoleShard)
		snc.Seed = int64(100 + i)
		snc.RetryMax = 10
		snc.Shards = nShards
		snc.ShardID = i
		snc.Regions = m
		snc.ShardDeadline = shardDeadline
		snc.Logf = log.Printf
		coord, upstream, err := snc.NewShard(func() (transport.Conn, error) { return transport.DialTCP(aggAddr) })
		if err != nil {
			shutdown()
			return nil, nil, err
		}
		l, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			coord.Close()
			upstream.Close()
			shutdown()
			return nil, nil, err
		}
		go coord.Serve(l)
		coords = append(coords, coord)
		links = append(links, upstream)
		addrs[i] = l.Addr()
	}
	return addrs, shutdown, nil
}

// worker is one multiplexed connection's load: a slice of one shard's
// region group, batched into a single frame per round.
type worker struct {
	shard   int
	regions []int
	link    *edge.BatchLink
	rng     *rand.Rand
	// latencies[r] is the wall time round r took on this worker's slice.
	latencies []time.Duration
}

func run(edges, vehPerEdge, rounds, nShards, connsPer int, spawn bool,
	aggAddr, shardAddrs string, shardDeadline, aggDeadline time.Duration,
	seed int64, metricsAddr, benchJSON string) error {
	if edges <= 0 || vehPerEdge <= 0 || rounds <= 0 || nShards <= 0 || connsPer <= 0 {
		return fmt.Errorf("edges, vehicles-per-edge, rounds, shards, conns-per-shard must all be positive")
	}
	ring, err := shard.NewRing(shard.Names(nShards))
	if err != nil {
		return err
	}
	table, err := shard.BuildTable(ring, edges)
	if err != nil {
		return err
	}

	var addrs []string
	if spawn {
		var shutdown func()
		addrs, shutdown, err = spawnTier(edges, nShards, shardDeadline, aggDeadline)
		if err != nil {
			return err
		}
		defer shutdown()
		if aggAddr != "" || shardAddrs != "" {
			return fmt.Errorf("-aggregator/-shard-addrs are for -spawn=false runs")
		}
	} else {
		addrs = strings.Split(shardAddrs, ",")
		if len(addrs) != nShards {
			return fmt.Errorf("-shard-addrs lists %d addresses, want one per shard (%d)", len(addrs), nShards)
		}
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
	}

	o := obs.New()
	vehicles := edges * vehPerEdge
	o.Gauge("loadgen_vehicles", "simulated vehicles across all edges").Set(float64(vehicles))
	latHist := o.Histogram("loadgen_round_latency_seconds", "per-worker census-batch round latency", nil)
	rpsGauge := o.Gauge("loadgen_rounds_per_sec", "consensus rounds completed per second over the run")
	p99Gauge := o.Gauge("loadgen_round_latency_p99_seconds", "p99 of per-worker round latency")
	if metricsAddr != "" {
		msrv, err := obs.Serve(metricsAddr, o)
		if err != nil {
			return err
		}
		defer msrv.Close()
		fmt.Printf("loadgen: metrics on http://%s/metrics\n", msrv.Addr())
	}

	// Partition each shard's region group across its worker connections.
	var workers []*worker
	for s := 0; s < nShards; s++ {
		group := table.Regions(s)
		per := connsPer
		if per > len(group) {
			per = len(group)
		}
		for w := 0; w < per; w++ {
			slice := make([]int, 0, len(group)/per+1)
			for idx := w; idx < len(group); idx += per {
				slice = append(slice, group[idx])
			}
			addr := addrs[s]
			workers = append(workers, &worker{
				shard:   s,
				regions: slice,
				rng:     rand.New(rand.NewSource(seed + int64(len(workers)))),
				link: &edge.BatchLink{
					Shard: s,
					Dialer: &transport.Dialer{
						Dial:        func() (transport.Conn, error) { return transport.DialTCP(addr) },
						MaxAttempts: 30,
						BaseDelay:   5 * time.Millisecond,
						MaxDelay:    500 * time.Millisecond,
						Seed:        seed + int64(len(workers)),
					},
					ReplyTimeout: 60 * time.Second,
					Attempts:     20,
					Obs:          o,
				},
				latencies: make([]time.Duration, 0, rounds),
			})
		}
	}
	defer func() {
		for _, w := range workers {
			w.link.Close()
		}
	}()
	fmt.Printf("loadgen: %d vehicles (%d edges x %d), %d shards, %d worker conns, %d rounds\n",
		vehicles, edges, vehPerEdge, nShards, len(workers), rounds)

	k := lattice.NewPaper().K()
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, len(workers))
	for wi, w := range workers {
		wi, w := wi, w
		wg.Add(1)
		go func() {
			defer wg.Done()
			censuses := make([]transport.Census, len(w.regions))
			for round := 0; round < rounds; round++ {
				for i, region := range w.regions {
					counts := make([]int, k)
					for v := 0; v < vehPerEdge; v++ {
						counts[w.rng.Intn(k)]++
					}
					censuses[i] = transport.Census{Edge: region, Round: round, Counts: counts}
				}
				t0 := time.Now()
				if _, err := w.link.Report(round, censuses); err != nil {
					errs[wi] = fmt.Errorf("shard %d worker round %d: %w", w.shard, round, err)
					return
				}
				lat := time.Since(t0)
				w.latencies = append(w.latencies, lat)
				latHist.Observe(lat.Seconds())
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	var all []float64
	for _, w := range workers {
		for _, l := range w.latencies {
			all = append(all, l.Seconds())
		}
	}
	sort.Float64s(all)
	p50 := metrics.Quantile(all, 0.50)
	p99 := metrics.Quantile(all, 0.99)
	rps := float64(rounds) / elapsed.Seconds()
	censusesPerSec := float64(rounds*edges) / elapsed.Seconds()
	rpsGauge.Set(rps)
	p99Gauge.Set(p99)
	fmt.Printf("loadgen: %d rounds in %v: %.2f rounds/s, %.0f censuses/s, round latency p50 %.1fms p99 %.1fms\n",
		rounds, elapsed.Round(time.Millisecond), rps, censusesPerSec, p50*1e3, p99*1e3)

	if benchJSON != "" {
		scale := fmt.Sprintf("%dx%d", edges, vehPerEdge)
		if err := scenario.AppendBench(benchJSON, []map[string]interface{}{
			{
				"name":             "Loadgen/" + scale + "/rounds_per_sec",
				"iterations":       rounds,
				"rounds_per_sec":   scenario.Round3(rps),
				"censuses_per_sec": scenario.Round3(censusesPerSec),
				"vehicles":         vehicles,
				"shards":           nShards,
			},
			{
				"name":        "Loadgen/" + scale + "/round_latency",
				"iterations":  len(all),
				"p50_seconds": scenario.Round6(p50),
				"p99_seconds": scenario.Round6(p99),
				"vehicles":    vehicles,
				"shards":      nShards,
			},
		}); err != nil {
			return err
		}
		fmt.Printf("loadgen: appended Loadgen/%s series to %s\n", scale, benchJSON)
	}
	return nil
}
