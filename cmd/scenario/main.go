// Command scenario executes declarative consensus scenarios.
//
//	scenario run spec.yaml [-json] [-seed N] [-q] [-metrics addr] [-bench-json file]
//	scenario check spec.yaml...
//	scenario fmt spec.yaml [-w]
//
// run compiles the spec into a wired tier (in-proc or TCP, per the spec),
// executes it, and prints the verdict — human-readable by default, machine-
// readable with -json. -metrics serves the run's live /metrics (Prometheus
// text) on addr while the scenario is in flight, so smoke jobs can assert
// mid-run counters. Exit status: 0 when every verdict check passed, 2
// when the run finished but a check failed, 1 on infrastructure errors.
// check validates specs without running them; fmt rewrites a spec in
// canonical form.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/scenario"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(1)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	case "fmt":
		err = cmdFmt(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "scenario: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "scenario:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  scenario run spec.yaml [-json] [-seed N] [-q] [-metrics addr] [-bench-json file]
  scenario check spec.yaml...
  scenario fmt spec.yaml [-w]
`)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "print the verdict as JSON")
	seed := fs.Int64("seed", 0, "override the spec's seed (0 keeps it)")
	quiet := fs.Bool("q", false, "suppress progress logging")
	benchJSON := fs.String("bench-json", "", "merge a Scenario/<name> rounds-per-sec series into this bench JSON file")
	metrics := fs.String("metrics", "", "serve the run's live /metrics on this address while it executes")
	spec, _, rest, err := parseSpecArg(fs, args, "run")
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("run takes one spec file")
	}

	opts := scenario.RunOptions{}
	if *seed != 0 {
		opts.Seed = seed
	}
	if *metrics != "" {
		o := obs.New()
		srv, err := obs.Serve(*metrics, o)
		if err != nil {
			return err
		}
		defer srv.Close()
		opts.Obs = o
		fmt.Fprintf(os.Stderr, "# metrics on http://%s/metrics\n", srv.Addr())
	}
	if !*quiet {
		opts.Logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "# "+format+"\n", a...)
		}
	}
	started := time.Now()
	verdict, err := scenario.Run(spec, opts)
	if err != nil {
		return err
	}
	if *benchJSON != "" {
		elapsed := time.Since(started).Seconds()
		rps := float64(verdict.Rounds) / elapsed
		entry := map[string]interface{}{
			"name":           "Scenario/" + verdict.Name,
			"rounds":         verdict.Rounds,
			"vehicles":       verdict.Vehicles,
			"rounds_per_sec": scenario.Round3(rps),
			"p50_seconds":    scenario.Round6(verdict.RoundLatency.P50MS / 1e3),
			"p99_seconds":    scenario.Round6(verdict.RoundLatency.P99MS / 1e3),
		}
		if err := scenario.AppendBench(*benchJSON, []map[string]interface{}{entry}); err != nil {
			return err
		}
	}
	if *jsonOut {
		out, err := json.MarshalIndent(verdict, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
	} else {
		printVerdict(verdict)
	}
	if !verdict.Pass {
		os.Exit(2)
	}
	return nil
}

func printVerdict(v *scenario.Verdict) {
	fmt.Printf("scenario %s: seed %d, %s, %d regions", v.Name, v.Seed, v.Network, v.Regions)
	if v.Shards > 1 {
		fmt.Printf(", %d shards", v.Shards)
	}
	fmt.Printf(", %d vehicles, %d rounds\n", v.Vehicles, v.Rounds)
	fmt.Printf("  converged:      %v (round %d), mean sharing ratio %.3f\n",
		v.Converged, v.ConvergedRound, v.MeanSharingRatio)
	fmt.Printf("  state hash:     %s\n", v.ConsensusStateHash)
	fmt.Printf("  degraded/rewound rounds: %d/%d (replayed %d, late %d, dup %d)\n",
		v.DegradedRounds, v.Rewinds, v.ReplayedRounds, v.LateCensuses, v.DuplicateCensuses)
	if v.Recoveries > 0 || v.LeaseEvictions > 0 {
		fmt.Printf("  recoveries:     %d (lease evictions %d)\n", v.Recoveries, v.LeaseEvictions)
	}
	if v.FaultsInjected > 0 || v.FailedReports > 0 {
		fmt.Printf("  faults:         %d injected, %d failed reports\n", v.FaultsInjected, v.FailedReports)
	}
	if v.GossipLocalRounds > 0 {
		fmt.Printf("  gossip:         %d local rounds (%d degraded, %d during partition), %d escalations (%d failed)\n",
			v.GossipLocalRounds, v.GossipDegradedRounds, v.GossipPartitionLocalRounds,
			v.GossipEscalations, v.GossipEscalationFailures)
	}
	fmt.Printf("  welfare:        %.2f net (utility %.2f - cost %.2f, %d items)\n",
		v.Welfare.Net, v.Welfare.ReceivedUtility, v.Welfare.SharedCost, v.Welfare.DeliveredItems)
	fmt.Printf("  round latency:  p50 %.1fms p99 %.1fms (total %.0fms)\n",
		v.RoundLatency.P50MS, v.RoundLatency.P99MS, v.ElapsedMS)
	if v.Baseline != nil {
		fmt.Printf("  vs lossless:    hash %s (equal=%v), welfare delta %+.2f\n",
			v.Baseline.ConsensusStateHash, v.Baseline.HashEqual, v.Baseline.WelfareDelta)
	}
	for _, c := range v.Checks {
		status := "ok"
		if !c.OK {
			status = "FAIL"
		}
		fmt.Printf("  check %-24s %s  (%s)\n", c.Name+":", status, c.Detail)
	}
	if v.Pass {
		fmt.Println("PASS")
	} else {
		fmt.Println("FAIL")
	}
}

func cmdCheck(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("check takes one or more spec files")
	}
	failed := false
	for _, path := range args {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if _, err := scenario.ParseSpec(data); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			failed = true
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	if failed {
		os.Exit(2)
	}
	return nil
}

func cmdFmt(args []string) error {
	fs := flag.NewFlagSet("fmt", flag.ExitOnError)
	write := fs.Bool("w", false, "rewrite the file instead of printing")
	spec, path, rest, err := parseSpecArg(fs, args, "fmt")
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("fmt takes one spec file")
	}
	out, err := scenario.MarshalSpec(spec)
	if err != nil {
		return err
	}
	if *write {
		return os.WriteFile(path, out, 0o644)
	}
	os.Stdout.Write(out)
	return nil
}

// parseSpecArg parses flags that may appear before or after the spec path
// and loads the spec.
func parseSpecArg(fs *flag.FlagSet, args []string, cmd string) (*scenario.Spec, string, []string, error) {
	if err := fs.Parse(args); err != nil {
		return nil, "", nil, err
	}
	if fs.NArg() < 1 {
		return nil, "", nil, fmt.Errorf("%s takes a spec file", cmd)
	}
	// Allow trailing flags after the positional spec path.
	path := fs.Arg(0)
	if err := fs.Parse(fs.Args()[1:]); err != nil {
		return nil, "", nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", nil, err
	}
	spec, err := scenario.ParseSpec(data)
	if err != nil {
		return nil, "", nil, fmt.Errorf("%s: %w", path, err)
	}
	return spec, path, fs.Args(), nil
}
