// Command repro regenerates every table and figure of the paper's
// evaluation section from the library:
//
//	repro -exp all                 # everything at laptop scale
//	repro -exp fig9 -scale full    # one experiment at paper scale
//	repro -list                    # enumerate experiments
//
// Output is a textual rendering of each table/figure plus the paper-vs-
// measured checks recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
)

type runner func(scale experiments.Scale) error

func main() {
	var (
		expName      = flag.String("exp", "all", "experiment to run (see -list)")
		scale        = flag.String("scale", "small", "small | full")
		list         = flag.Bool("list", false, "list experiments and exit")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		buildWorkers = flag.Int("build-workers", 0, "world-build worker-pool size (0 = all CPUs); never changes results")
	)
	flag.Parse()
	worldWorkers = *buildWorkers

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: creating cpu profile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "repro: starting cpu profile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "repro: creating heap profile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize final live-set statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "repro: writing heap profile: %v\n", err)
			}
		}()
	}

	table := map[string]runner{
		"table2":          runTable2,
		"table3":          runTable3,
		"fig7":            runFig7,
		"fig8":            runFig8,
		"fig9":            runFig9,
		"fig10":           runFig10,
		"ablation-lambda": runAblationLambda,
		"ablation-beta":   runAblationBeta,
		"welfare":         runWelfare,
		"micro-macro":     runMicroMacro,
	}

	if *list {
		names := make([]string, 0, len(table))
		for n := range table {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println("experiments:", strings.Join(names, ", "), "(or: all)")
		return
	}

	var sc experiments.Scale
	switch *scale {
	case "small":
		sc = experiments.ScaleSmall
	case "full":
		sc = experiments.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "repro: unknown scale %q (want small or full)\n", *scale)
		os.Exit(2)
	}

	var selected []string
	if *expName == "all" {
		selected = []string{"table3", "table2", "fig7", "fig8", "fig9", "fig10", "ablation-lambda", "ablation-beta", "welfare", "micro-macro"}
	} else {
		if _, ok := table[*expName]; !ok {
			fmt.Fprintf(os.Stderr, "repro: unknown experiment %q (use -list)\n", *expName)
			os.Exit(2)
		}
		selected = []string{*expName}
	}

	for _, name := range selected {
		start := time.Now()
		if err := table[name](sc); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("\n[%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func runTable3(experiments.Scale) error {
	res, err := experiments.Table3()
	if err != nil {
		return err
	}
	return res.Render(os.Stdout)
}

func runTable2(experiments.Scale) error {
	return experiments.Table2().Render(os.Stdout)
}

// worldBuilder shares one artifact cache across every world built in this
// process, so repeated experiments (and the BC/TD pair of one scale) reuse
// the road network, trace, and map-matching stages. worldWorkers carries the
// -build-workers flag; it bounds the build's worker pools without affecting
// results.
var (
	worldBuilder = sim.NewWorldBuilder()
	worldWorkers int
	worldCache   = map[experiments.Scale][2]*sim.World{}
)

func cachedWorlds(sc experiments.Scale) (*sim.World, *sim.World, error) {
	if pair, ok := worldCache[sc]; ok {
		return pair[0], pair[1], nil
	}
	fmt.Printf("(building %s-scale worlds: road network, trace, clustering...)\n", sc)
	bc, td, err := experiments.WorldsWith(worldBuilder, sc, worldWorkers)
	if err != nil {
		return nil, nil, err
	}
	worldCache[sc] = [2]*sim.World{bc, td}
	return bc, td, nil
}

func runFig7(sc experiments.Scale) error {
	bc, _, err := cachedWorlds(sc)
	if err != nil {
		return err
	}
	res, err := experiments.Fig7(bc)
	if err != nil {
		return err
	}
	return res.Render(os.Stdout)
}

func runFig8(sc experiments.Scale) error {
	bc, td, err := cachedWorlds(sc)
	if err != nil {
		return err
	}
	res, err := experiments.Fig8(bc, td)
	if err != nil {
		return err
	}
	return res.Render(os.Stdout)
}

func runFig9(sc experiments.Scale) error {
	bc, td, err := cachedWorlds(sc)
	if err != nil {
		return err
	}
	res, err := experiments.Fig9(bc, td, experiments.Fig9Config{})
	if err != nil {
		return err
	}
	return res.Render(os.Stdout)
}

func runFig10(sc experiments.Scale) error {
	bc, _, err := cachedWorlds(sc)
	if err != nil {
		return err
	}
	res, err := experiments.Fig10(bc, experiments.Fig10Config{})
	if err != nil {
		return err
	}
	return res.Render(os.Stdout)
}

func runAblationLambda(sc experiments.Scale) error {
	bc, _, err := cachedWorlds(sc)
	if err != nil {
		return err
	}
	res, err := experiments.LambdaAblation(bc, nil, sim.MacroOptions{})
	if err != nil {
		return err
	}
	return res.Render(os.Stdout)
}

func runAblationBeta(sc experiments.Scale) error {
	bc, _, err := cachedWorlds(sc)
	if err != nil {
		return err
	}
	res, err := experiments.BetaNoise(bc, nil, sim.MacroOptions{})
	if err != nil {
		return err
	}
	return res.Render(os.Stdout)
}

func runWelfare(sc experiments.Scale) error {
	bc, _, err := cachedWorlds(sc)
	if err != nil {
		return err
	}
	res, err := experiments.WelfareComparison(bc, experiments.WelfareConfig{})
	if err != nil {
		return err
	}
	return res.Render(os.Stdout)
}

func runMicroMacro(sc experiments.Scale) error {
	bc, _, err := cachedWorlds(sc)
	if err != nil {
		return err
	}
	res, err := experiments.MicroMacro(bc, nil, sim.MacroOptions{})
	if err != nil {
		return err
	}
	return res.Render(os.Stdout)
}
