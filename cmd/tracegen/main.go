// Command tracegen generates a synthetic Shenzhen-like vehicle trace over a
// synthetic Futian-like road network and writes both to disk:
//
//	tracegen -taxis 390 -transit 310 -hours 24 -out trace.csv -net network.txt
//
// The trace is the CSV analogue of the dataset the paper uses (vehicle id,
// kind, timestamp, GPS position, speed, map-matched segment).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/roadnet"
	"repro/internal/trace"
)

func main() {
	var (
		taxis   = flag.Int("taxis", 390, "number of taxi-like vehicles")
		transit = flag.Int("transit", 310, "number of transit-like vehicles")
		hours   = flag.Float64("hours", 24, "trace duration in hours")
		seed    = flag.Int64("seed", 1, "random seed (network and trace)")
		rows    = flag.Int("rows", 52, "road network grid rows")
		cols    = flag.Int("cols", 62, "road network grid columns")
		outPath = flag.String("out", "trace.csv", "trace CSV output path")
		netPath = flag.String("net", "", "optional road network output path")
		match   = flag.Bool("match", true, "map-match fixes to segments")
	)
	flag.Parse()

	if err := run(*taxis, *transit, *hours, *seed, *rows, *cols, *outPath, *netPath, *match); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}

func run(taxis, transit int, hours float64, seed int64, rows, cols int, outPath, netPath string, match bool) error {
	netCfg := roadnet.DefaultGenConfig()
	netCfg.Rows, netCfg.Cols = rows, cols
	netCfg.Seed = seed
	net, err := roadnet.Generate(netCfg)
	if err != nil {
		return fmt.Errorf("generating network: %w", err)
	}
	fmt.Printf("network: %d segments, %d adjacencies\n", net.NumSegments(), net.NumAdjacencies())

	trCfg := trace.DefaultGenConfig()
	trCfg.Taxis, trCfg.Transit = taxis, transit
	trCfg.Duration = time.Duration(hours * float64(time.Hour))
	trCfg.Seed = seed
	ts, err := trace.Generate(net, trCfg)
	if err != nil {
		return fmt.Errorf("generating trace: %w", err)
	}
	if match {
		ts, err = trace.MatchToNetwork(ts, net, netCfg.Box, 400)
		if err != nil {
			return fmt.Errorf("map matching: %w", err)
		}
	}
	fmt.Printf("trace: %d vehicles, %d fixes over %.1fh\n", ts.NumVehicles(), ts.NumFixes(), hours)

	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := trace.WriteCSV(out, ts); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)

	if netPath != "" {
		nf, err := os.Create(netPath)
		if err != nil {
			return err
		}
		defer nf.Close()
		if err := roadnet.Write(nf, net); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", netPath)
	}
	return nil
}
