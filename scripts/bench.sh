#!/usr/bin/env bash
# Runs the performance-trajectory benchmark suite and emits a
# machine-readable BENCH_<date>.json at the repo root, so successive PRs can
# diff encode/round-trip/world-build/consensus throughput over time.
#
# Usage:
#   scripts/bench.sh                  # writes BENCH_$(date +%F).json
#   BENCH_DATE=2026-08-07 scripts/bench.sh
#   BENCH_FILTER='ConsensusRoundsPerSec' scripts/bench.sh   # subset, prints only
#   LOADGEN_SCALES="64x32 1000x100" scripts/bench.sh        # extra load-harness scales
#   BENCH_SKIP_LOADGEN=1 scripts/bench.sh                   # micro-benchmarks only
#   BENCH_SKIP_SCENARIO=1 scripts/bench.sh                  # skip scenario series
#   BENCH_SCENARIOS="baseline citywide" scripts/bench.sh    # other scenario specs
#
# Besides the Go micro-benchmarks, it drives cmd/loadgen once per scale in
# LOADGEN_SCALES (edges x vehicles-per-edge, default 64x32) against a
# spawned 4-shard tier and merges the rounds/sec + p99 latency series into
# the same JSON; series names carry the scale, so differently sized runs
# never compare against each other. It also runs each scenario spec in
# BENCH_SCENARIOS through cmd/scenario, merging a Scenario/<name>
# rounds-per-sec series keyed by the spec's name — end-to-end tier
# throughput under that spec's exact fleet and fault profile.
set -euo pipefail
cd "$(dirname "$0")/.."

date_tag="${BENCH_DATE:-$(date +%F)}"
filter="${BENCH_FILTER:-BenchmarkEncodeCensus|BenchmarkRoundTrip|BenchmarkBuildWorld|BenchmarkConsensusRoundsPerSec|BenchmarkShardedConsensusRoundsPerSec|BenchmarkJournalAppend}"
out="BENCH_${date_tag}.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$filter" -benchmem -count=1 . | tee "$raw"

python3 - "$raw" "$date_tag" > "$out" <<'PY'
import json, re, sys

raw_path, date_tag = sys.argv[1], sys.argv[2]
meta, results = {}, []
line_re = re.compile(r'^(Benchmark\S+)\s+(\d+)\s+(.*)$')
for line in open(raw_path):
    line = line.strip()
    for key in ("goos", "goarch", "pkg", "cpu"):
        if line.startswith(key + ":"):
            meta[key] = line.split(":", 1)[1].strip()
    m = line_re.match(line)
    if not m:
        continue
    name, iters, rest = m.group(1), int(m.group(2)), m.group(3)
    entry = {"name": name, "iterations": iters}
    for value, unit in re.findall(r'([0-9.]+(?:e[+-]?\d+)?)\s+(\S+)', rest):
        v = float(value)
        key = {
            "ns/op": "ns_per_op",
            "B/op": "bytes_per_op",
            "allocs/op": "allocs_per_op",
        }.get(unit, unit.replace("/", "_per_"))
        entry[key] = int(v) if v.is_integer() else v
    results.append(entry)

json.dump({"date": date_tag, **meta, "results": results}, sys.stdout, indent=2)
print()
PY

if [ "${BENCH_SKIP_LOADGEN:-0}" != "1" ]; then
  for scale in ${LOADGEN_SCALES:-64x32}; do
    edges="${scale%x*}"
    vpe="${scale#*x}"
    go run ./cmd/loadgen -edges "$edges" -vehicles-per-edge "$vpe" \
      -rounds "${LOADGEN_ROUNDS:-40}" -shards "${LOADGEN_SHARDS:-4}" \
      -bench-json "$out"
  done
fi

if [ "${BENCH_SKIP_SCENARIO:-0}" != "1" ]; then
  for spec in ${BENCH_SCENARIOS:-baseline lossy-network}; do
    go run ./cmd/scenario run "scenarios/${spec}.yaml" -q -bench-json "$out" >/dev/null
  done
fi

echo "wrote $out (${#filter} filter, $(python3 -c "import json,sys;print(len(json.load(open('$out'))['results']))") series)" >&2
