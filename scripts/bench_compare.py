#!/usr/bin/env python3
"""Bench regression gate: compare a fresh bench JSON against a baseline.

Usage: scripts/bench_compare.py BASELINE.json NEW.json [--tolerance 0.20]

For every series name present in BOTH files (series only one side has —
e.g. a differently scaled loadgen run or a newly added benchmark — are
reported but never gate):

  - ns_per_op may grow at most tolerance (default 20%): slower is worse.
  - rounds_per_sec may shrink at most tolerance: fewer is worse.

Exits 1 if any shared series regressed beyond tolerance.
"""
import argparse
import json
import sys


def load(path):
    with open(path) as fh:
        doc = json.load(fh)
    return {r["name"]: r for r in doc.get("results", [])}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional regression (default 0.20)")
    args = ap.parse_args()

    old, new = load(args.baseline), load(args.new)
    shared = sorted(set(old) & set(new))
    skipped = sorted(set(old) ^ set(new))
    failures = []

    for name in shared:
        o, n = old[name], new[name]
        # Lower is better.
        if "ns_per_op" in o and "ns_per_op" in n:
            limit = o["ns_per_op"] * (1 + args.tolerance)
            status = "FAIL" if n["ns_per_op"] > limit else "ok"
            print(f"{status:4} {name}: ns/op {o['ns_per_op']:.4g} -> {n['ns_per_op']:.4g} "
                  f"(limit {limit:.4g})")
            if status == "FAIL":
                failures.append(name)
        # Higher is better.
        if "rounds_per_sec" in o and "rounds_per_sec" in n:
            limit = o["rounds_per_sec"] * (1 - args.tolerance)
            status = "FAIL" if n["rounds_per_sec"] < limit else "ok"
            print(f"{status:4} {name}: rounds/s {o['rounds_per_sec']:.4g} -> {n['rounds_per_sec']:.4g} "
                  f"(limit {limit:.4g})")
            if status == "FAIL":
                failures.append(name)

    for name in skipped:
        side = "baseline" if name in old else "new"
        print(f"skip {name}: only in {side}")

    if failures:
        print(f"\n{len(failures)} series regressed beyond "
              f"{args.tolerance:.0%}: {', '.join(sorted(set(failures)))}", file=sys.stderr)
        return 1
    print(f"\nall {len(shared)} shared series within {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
